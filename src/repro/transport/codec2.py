"""Binary wire codec (v2): compact, length-delimited, no base64.

The JSON codec (:mod:`repro.transport.codec`, wire v1) pays for
generality three times on the hot path: every ``bytes`` field inflates
through base64, every message builds an intermediate dict, and every
decode walks that dict back through type sniffing.  This module encodes
the same frozen dataclasses (every entry of
:data:`repro.transport.codec.MESSAGE_TYPES`) into a flat tagged binary
form:

* one magic byte (``0xB2``) distinguishing v2 payloads from JSON (which
  always starts with ``{``), so decoders auto-detect the version and
  mixed v1/v2 peers interoperate on one connection;
* a varint message-type id (stable: assigned from the sorted registry
  names) and field count, pre-packed per class into a cached prefix;
* fields in dataclass order as tagged values -- raw ``bytes`` carried
  verbatim (sliced back out of the receive buffer via ``memoryview``,
  copied exactly once into the decoded object), varint integers,
  inlined ``Tag``/``TaggedValue``/``CodedElement`` shapes, and nested
  messages (``NamespacedMessage``) by recursion.

Round-trip equivalence with v1 is bit-exact at the object level
(``decode(encode_v2(m)) == decode(encode_v1(m)) == m``) and proven by
the differential tests in ``tests/transport/test_codec2.py``.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from struct import Struct
from typing import Any, Dict, List, Tuple

from repro.core.namespace import NamespacedMessage
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.errors import ProtocolError

#: First byte of every v2 payload.  Never a valid JSON start byte.
MAGIC_V2 = 0xB2

# Value tags.  One byte each; the hot shapes (bytes, ints, tags) come
# first only by convention -- dispatch is by exact byte.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03        # non-negative varint
_T_NEG_INT = 0x04    # varint of -(n + 1)
_T_FLOAT = 0x05      # 8-byte IEEE-754 big-endian
_T_BYTES = 0x06      # varint length + raw bytes
_T_STR = 0x07        # varint length + UTF-8
_T_TAG = 0x08        # varint num + varint writer-length + writer UTF-8
_T_TAGGED = 0x09     # inlined tag + value
_T_CODED = 0x0A      # varint index + varint length + raw bytes
_T_SEQ = 0x0B        # varint count + values (lists and tuples)
_T_DICT = 0x0C       # varint count + alternating key/value values
_T_MSG = 0x0D        # nested message (full v2 encoding, recursive)

_PACK_F64 = Struct(">d")
_UNPACK_F64 = _PACK_F64.unpack_from


def _uvarint(out: bytearray, n: int) -> None:
    """Append ``n >= 0`` as an unsigned LEB128 varint."""
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _read_uvarint(data, pos: int) -> Tuple[int, int]:
    shift = 0
    result = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ProtocolError("varint too long")


# -- registry ---------------------------------------------------------------
# Type ids are assigned from the sorted registry names, so every process
# running this codebase derives the same table without negotiation.

def _build_tables():
    from repro.transport.codec import MESSAGE_TYPES

    names = sorted(MESSAGE_TYPES)
    by_id: List[type] = []
    prefixes: Dict[type, bytes] = {}
    fields_of: Dict[type, tuple] = {}
    bypass: Dict[type, bool] = {}
    opid_first: List[bool] = []
    for type_id, name in enumerate(names):
        cls = MESSAGE_TYPES[name]
        by_id.append(cls)
        names_tuple = tuple(f.name for f in dataclasses.fields(cls))
        fields_of[cls] = names_tuple
        prefix = bytearray([MAGIC_V2])
        _uvarint(prefix, type_id)
        _uvarint(prefix, len(names_tuple))
        prefixes[cls] = bytes(prefix)
        # Decoding may skip the dataclass __init__ (building the instance
        # __dict__ directly) only when the class runs no validation on
        # construction and stores fields in a plain __dict__.
        bypass[cls] = (not hasattr(cls, "__post_init__")
                       and not hasattr(cls, "__slots__"))
        opid_first.append(bool(names_tuple) and names_tuple[0] == "op_id")
    return by_id, prefixes, fields_of, bypass, opid_first


_BY_ID, _PREFIXES, _FIELDS, _BYPASS_INIT, _OPID_FIRST = _build_tables()

_NEW = object.__new__

# Namespaced (keyed) traffic wraps every hot message in a
# NamespacedMessage, whose first field is the register name rather than
# an op_id -- so without help it misses every op_id-keyed fast path
# below.  The wrapper's wire shape is fixed (magic, type id, nfields=2,
# _T_STR register, _T_MSG inner), which lets the caches and the peek see
# *through* it: skip the register string, then treat the inner message
# exactly like an unwrapped one.  The byte-level dispatch assumes the
# wrapper's type id fits one varint byte; guard it so registry growth
# degrades to the slow path instead of misparsing.
_NS_ID = _BY_ID.index(NamespacedMessage)
_NS_PREFIX = _PREFIXES[NamespacedMessage]
_NS_FAST = _NS_ID < 0x80 and len(_NS_PREFIX) == 3
#: Tail templates kept per shape by the namespaced decoder cache, and
#: register entries kept by the namespaced encoder cache.  Keyed
#: workloads touch many registers round-robin, so a single slot would
#: thrash; bounded tables capture the Zipf head plus the shared
#: zero-state templates of the cold tail.
_NS_CACHE_MAX = 512
#: Distinct inner shapes the decoder tracks (one per message class that
#: appears on the wire; the registry holds ~25 classes total).
_NS_SHAPES_MAX = 64


def _ns_spans(blob: bytes):
    """Template spans of a namespaced v2 payload, or ``None``.

    Returns ``(register_bytes, head_end, opid_end)`` where
    ``blob[:head_end]`` covers everything up to and including the inner
    ``_T_INT`` op_id marker and ``blob[opid_end:]`` is the remainder
    after the op_id varint.  ``None`` when the payload is not the
    one-byte-length shape the fast paths handle (callers fall back to
    the full decode, which stays authoritative).
    """
    if blob[2] != 2 or blob[3] != _T_STR:
        return None
    rlen = blob[4]
    if rlen >= 0x80:
        return None
    rend = 5 + rlen
    if blob[rend] != _T_MSG or blob[rend + 1] != MAGIC_V2:
        return None
    pos = rend + 2
    if blob[pos] < 0x80:
        pos += 1
    else:
        _, pos = _read_uvarint(blob, pos)
    if blob[pos] < 0x80:
        pos += 1
    else:
        _, pos = _read_uvarint(blob, pos)
    if blob[pos] != _T_INT:
        return None
    head_end = pos + 1
    if blob[head_end] < 0x80:
        opid_end = head_end + 1
    else:
        _, opid_end = _read_uvarint(blob, head_end)
    return blob[5:rend], head_end, opid_end

# Tag.__post_init__ only rejects negative numbers, and the wire carries
# tag numbers as unsigned varints -- no byte sequence can decode to a
# negative num -- so decode may skip the frozen-dataclass __init__ and
# fill the instance __dict__ directly (half the construction cost).
_TAG_BYPASS = not hasattr(Tag, "__slots__")
_TV_BYPASS = (not hasattr(TaggedValue, "__post_init__")
              and not hasattr(TaggedValue, "__slots__"))


# _encode_value appends one-byte varints (n < 0x80) inline -- small
# lengths and ids dominate real traffic, mirroring the decode fast path.

def _encode_value(out: bytearray, value: Any) -> None:
    kind = type(value)
    if kind is bytes or kind is bytearray or kind is memoryview:
        out.append(_T_BYTES)
        length = len(value)
        if length < 0x80:
            out.append(length)
        else:
            _uvarint(out, length)
        out += value
    elif kind is int:
        if 0 <= value < 0x80:
            out.append(_T_INT)
            out.append(value)
        elif value >= 0:
            out.append(_T_INT)
            _uvarint(out, value)
        else:
            out.append(_T_NEG_INT)
            _uvarint(out, -value - 1)
    elif kind is str:
        raw = value.encode()
        out.append(_T_STR)
        length = len(raw)
        if length < 0x80:
            out.append(length)
        else:
            _uvarint(out, length)
        out += raw
    elif kind is Tag:
        out.append(_T_TAG)
        num = value.num
        if 0 <= num < 0x80:
            out.append(num)
        else:
            _uvarint(out, num)
        raw = value.writer.encode()
        length = len(raw)
        if length < 0x80:
            out.append(length)
        else:
            _uvarint(out, length)
        out += raw
    elif value is None:
        out.append(_T_NONE)
    elif kind is TaggedValue:
        out.append(_T_TAGGED)
        tag = value.tag
        num = tag.num
        if 0 <= num < 0x80:
            out.append(num)
        else:
            _uvarint(out, num)
        raw = tag.writer.encode()
        length = len(raw)
        if length < 0x80:
            out.append(length)
        else:
            _uvarint(out, length)
        out += raw
        _encode_value(out, value.value)
    elif kind is CodedElement:
        out.append(_T_CODED)
        _uvarint(out, value.index)
        _uvarint(out, len(value.data))
        out += value.data
    elif kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif kind is float:
        out.append(_T_FLOAT)
        out += _PACK_F64.pack(value)
    elif kind is tuple or kind is list:
        out.append(_T_SEQ)
        _uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif kind is dict:
        out.append(_T_DICT)
        _uvarint(out, len(value))
        for key, item in value.items():
            _encode_value(out, key)
            _encode_value(out, item)
    elif kind in _PREFIXES:
        out.append(_T_MSG)
        _encode_into(out, value)
    else:
        # Tolerate subclasses the exact-type fast paths missed.
        if isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            _uvarint(out, len(value))
            out += value
        elif isinstance(value, bool):
            out.append(_T_TRUE if value else _T_FALSE)
        elif isinstance(value, int):
            _encode_value(out, int(value))
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _PACK_F64.pack(value)
        elif isinstance(value, (list, tuple)):
            out.append(_T_SEQ)
            _uvarint(out, len(value))
            for item in value:
                _encode_value(out, item)
        else:
            raise ProtocolError(
                f"cannot serialize {type(value).__name__}: {value!r}")


def _encode_into(out: bytearray, message: Any) -> None:
    cls = type(message)
    prefix = _PREFIXES.get(cls)
    if prefix is None:
        raise ProtocolError(
            f"{cls.__name__} is not a registered message type")
    out += prefix
    encode_value = _encode_value
    for name in _FIELDS[cls]:
        encode_value(out, getattr(message, name))


def encode_message_v2(message: Any) -> bytes:
    """Serialize one protocol message to compact binary bytes."""
    # _encode_into's body, inlined: one call layer per message matters
    # at wire-path rates.
    cls = type(message)
    prefix = _PREFIXES.get(cls)
    if prefix is None:
        raise ProtocolError(
            f"{cls.__name__} is not a registered message type")
    out = bytearray(prefix)
    encode_value = _encode_value
    for name in _FIELDS[cls]:
        encode_value(out, getattr(message, name))
    return bytes(out)


# _decode_value inlines the one-byte varint case (b < 0x80) at every
# length/count read -- small fields dominate real traffic, and skipping
# the _read_uvarint call per field is a measurable share of decode time.

def _decode_value(data, pos: int) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _T_BYTES:
        length = data[pos]
        if length < 0x80:
            pos += 1
        else:
            length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ProtocolError("truncated bytes value")
        return bytes(data[pos:end]), end
    if tag == _T_INT:
        value = data[pos]
        if value < 0x80:
            return value, pos + 1
        return _read_uvarint(data, pos)
    if tag == _T_NEG_INT:
        value = data[pos]
        if value < 0x80:
            pos += 1
        else:
            value, pos = _read_uvarint(data, pos)
        return -value - 1, pos
    if tag == _T_STR:
        length = data[pos]
        if length < 0x80:
            pos += 1
        else:
            length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ProtocolError("truncated string value")
        return str(data[pos:end], "utf-8"), end
    if tag == _T_TAG:
        num = data[pos]
        if num < 0x80:
            pos += 1
        else:
            num, pos = _read_uvarint(data, pos)
        length = data[pos]
        if length < 0x80:
            pos += 1
        else:
            length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ProtocolError("truncated tag writer")
        if _TAG_BYPASS:
            tag_obj = _NEW(Tag)
            fields = tag_obj.__dict__
            fields["num"] = num
            fields["writer"] = str(data[pos:end], "utf-8")
            return tag_obj, end
        return Tag(num, str(data[pos:end], "utf-8")), end
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TAGGED:
        num = data[pos]
        if num < 0x80:
            pos += 1
        else:
            num, pos = _read_uvarint(data, pos)
        length = data[pos]
        if length < 0x80:
            pos += 1
        else:
            length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ProtocolError("truncated tagged value")
        writer = str(data[pos:end], "utf-8")
        value, pos = _decode_value(data, end)
        if _TAG_BYPASS and _TV_BYPASS:
            tag_obj = _NEW(Tag)
            fields = tag_obj.__dict__
            fields["num"] = num
            fields["writer"] = writer
            pair = _NEW(TaggedValue)
            fields = pair.__dict__
            fields["tag"] = tag_obj
            fields["value"] = value
            return pair, pos
        return TaggedValue(Tag(num, writer), value), pos
    if tag == _T_CODED:
        index, pos = _read_uvarint(data, pos)
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise ProtocolError("truncated coded element")
        return CodedElement(index, bytes(data[pos:end])), end
    if tag == _T_SEQ:
        count = data[pos]
        if count < 0x80:
            pos += 1
        else:
            count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _decode_value(data, pos)
            value, pos = _decode_value(data, pos)
            mapping[key] = value
        return mapping, pos
    if tag == _T_MSG:
        return _decode_message_at(data, pos)
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise ProtocolError("truncated float value")
        return _UNPACK_F64(data, pos)[0], pos + 8
    raise ProtocolError(f"unknown value tag 0x{tag:02x}")


def _decode_message_at(data, pos: int) -> Tuple[Any, int]:
    if pos >= len(data) or data[pos] != MAGIC_V2:
        raise ProtocolError("nested message lacks the v2 magic byte")
    pos += 1
    type_id = data[pos]
    if type_id < 0x80:
        pos += 1
    else:
        type_id, pos = _read_uvarint(data, pos)
    if type_id >= len(_BY_ID):
        raise ProtocolError(f"unknown message type id {type_id}")
    cls = _BY_ID[type_id]
    field_names = _FIELDS[cls]
    nfields = data[pos]
    if nfields < 0x80:
        pos += 1
    else:
        nfields, pos = _read_uvarint(data, pos)
    if nfields != len(field_names):
        raise ProtocolError(
            f"{cls.__name__} carries {nfields} fields, "
            f"expected {len(field_names)}")
    values = []
    for _ in range(nfields):
        value, pos = _decode_value(data, pos)
        values.append(value)
    # Sequences flatten to lists on the wire; restore tuples at the top
    # level for frozen-dataclass equality (mirrors the JSON codec).
    if _BYPASS_INIT[cls]:
        decoded = _NEW(cls)
        fields = decoded.__dict__
        for name, value in zip(field_names, values):
            fields[name] = tuple(value) if type(value) is list else value
    else:
        decoded = cls(*values)
        for name, value in zip(field_names, values):
            if type(value) is list:
                object.__setattr__(decoded, name, tuple(value))
    return decoded, pos


def decode_message_v2(data) -> Any:
    """Inverse of :func:`encode_message_v2`; raises ProtocolError on garbage.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview`` into a
    receive buffer -- every field is copied out into an owned object, so
    the caller may recycle the buffer as soon as this returns.
    """
    # _decode_message_at's body, inlined for the top-level message (the
    # overwhelmingly common case); the helper remains for nested ones.
    try:
        if not data or data[0] != MAGIC_V2:
            raise ProtocolError("nested message lacks the v2 magic byte")
        pos = 1
        type_id = data[pos]
        if type_id < 0x80:
            pos += 1
        else:
            type_id, pos = _read_uvarint(data, pos)
        if type_id >= len(_BY_ID):
            raise ProtocolError(f"unknown message type id {type_id}")
        cls = _BY_ID[type_id]
        field_names = _FIELDS[cls]
        nfields = data[pos]
        if nfields < 0x80:
            pos += 1
        else:
            nfields, pos = _read_uvarint(data, pos)
        if nfields != len(field_names):
            raise ProtocolError(
                f"{cls.__name__} carries {nfields} fields, "
                f"expected {len(field_names)}")
        decode_value = _decode_value
        values = []
        for _ in range(nfields):
            value, pos = decode_value(data, pos)
            values.append(value)
        if _BYPASS_INIT[cls]:
            decoded = _NEW(cls)
            fields = decoded.__dict__
            for name, value in zip(field_names, values):
                fields[name] = tuple(value) if type(value) is list else value
        else:
            decoded = cls(*values)
            for name, value in zip(field_names, values):
                if type(value) is list:
                    object.__setattr__(decoded, name, tuple(value))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed v2 message: {exc}") from exc
    if pos != len(data):
        raise ProtocolError(
            f"{len(data) - pos} trailing bytes after v2 message")
    return decoded


#: Field types whose encoding cannot change behind an identity check.
_IMMUTABLE_FIELD_TYPES = (bytes, str, int, float, bool, type(None), Tag)


class CachedEncoder:
    """A v2 encoder memoizing the tail of op_id-keyed repeats.

    Server reply streams repeat one message shape with a fresh ``op_id``
    and byte-identical remaining fields: a quiet register answers every
    read with the *same* ``(tag, payload)`` objects out of its history.
    The encoder keeps the encoded tail of the last message whose
    non-op_id fields were immutable and compares by object identity, so
    a hit costs one prefix copy plus the op_id varint instead of a full
    field walk.  Misses (different objects, mutable field types,
    unregistered or op_id-less messages) fall back to the plain encode
    and stay bit-identical -- the cache changes cost, never bytes.

    Namespaced (keyed) messages get the same treatment twice over: a
    per-register LRU caches the full head (wrapper prefix + register +
    inner prefix) for hot keys, and a per-inner-class fallback caches
    just the tail for the cold tail of a large keyspace -- every
    untouched key's reply shares the same ``(TAG_ZERO, b"")`` objects,
    and every request the same empty field list, so identity matching
    works across registers.
    """

    __slots__ = ("_cls", "_vals", "_tail", "_ns", "_shape")

    def __init__(self) -> None:
        self._cls: Any = None
        self._vals: tuple = ()
        self._tail = b""
        #: register -> (inner class, non-op_id values, head, tail)
        self._ns: "OrderedDict[str, tuple]" = OrderedDict()
        #: inner class -> (non-op_id values, tail)
        self._shape: Dict[type, tuple] = {}

    def _encode_namespaced(self, message: Any) -> bytes:
        register = message.register
        inner = message.inner
        icls = type(inner)
        ns = self._ns
        entry = ns.get(register)
        if entry is not None and entry[0] is icls:
            names = _FIELDS[icls]
            vals = entry[1]
            match = True
            for name, cached in zip(names[1:], vals):
                if getattr(inner, name) is not cached:
                    match = False
                    break
            op_id = inner.op_id
            if match and type(op_id) is int and op_id >= 0:
                # The cached head ends at the inner ``_T_INT`` marker;
                # only the op_id varint goes between head and tail.
                out = bytearray(entry[2])
                if op_id < 0x80:
                    out.append(op_id)
                elif op_id < 0x4000:
                    out.append((op_id & 0x7F) | 0x80)
                    out.append(op_id >> 7)
                else:
                    _uvarint(out, op_id)
                out += entry[3]
                ns.move_to_end(register)
                return bytes(out)
        names = _FIELDS.get(icls)
        if (not names or names[0] != "op_id"
                or type(register) is not str or len(register) >= 0x80):
            return encode_message_v2(message)
        shape = self._shape.get(icls)
        if shape is not None:
            op_id = inner.op_id
            match = type(op_id) is int and op_id >= 0
            if match:
                for name, cached in zip(names[1:], shape[0]):
                    if getattr(inner, name) is not cached:
                        match = False
                        break
            if match:
                # Cold-key fast path: rebuild the head from the live
                # register (cheap -- one short string) and reuse the
                # cached tail shared by every register in this state.
                out = bytearray(_NS_PREFIX)
                raw = register.encode()
                out.append(_T_STR)
                if len(raw) < 0x80:
                    out.append(len(raw))
                else:
                    _uvarint(out, len(raw))
                out += raw
                out.append(_T_MSG)
                out += _PREFIXES[icls]
                out.append(_T_INT)
                if op_id < 0x80:
                    out.append(op_id)
                elif op_id < 0x4000:
                    out.append((op_id & 0x7F) | 0x80)
                    out.append(op_id >> 7)
                else:
                    _uvarint(out, op_id)
                out += shape[1]
                return bytes(out)
        out = bytearray(_NS_PREFIX)
        _encode_value(out, register)
        out.append(_T_MSG)
        out += _PREFIXES[icls]
        _encode_value(out, inner.op_id)
        start = len(out)
        vals = []
        cacheable = type(inner.op_id) is int and inner.op_id >= 0
        for name in names[1:]:
            value = getattr(inner, name)
            _encode_value(out, value)
            if type(value) not in _IMMUTABLE_FIELD_TYPES:
                cacheable = False
            vals.append(value)
        blob = bytes(out)
        if cacheable:
            tail = blob[start:]
            self._shape[icls] = (tuple(vals), tail)
            spans = _ns_spans(blob)
            if spans is not None:
                _, head_end, _ = spans
                ns[register] = (icls, tuple(vals), blob[:head_end], tail)
                ns.move_to_end(register)
                if len(ns) > _NS_CACHE_MAX:
                    ns.popitem(last=False)
        return blob

    def __call__(self, message: Any) -> bytes:
        cls = type(message)
        if cls is NamespacedMessage and _NS_FAST:
            return self._encode_namespaced(message)
        if cls is self._cls:
            names = _FIELDS[cls]
            match = True
            for name, cached in zip(names[1:], self._vals):
                if getattr(message, name) is not cached:
                    match = False
                    break
            if match:
                out = bytearray(_PREFIXES[cls])
                op_id = message.op_id
                if type(op_id) is int and 0 <= op_id < 0x4000:
                    # One- or two-byte varint: every op_id a long-lived
                    # client issues short of its 16384th operation.
                    out.append(_T_INT)
                    if op_id < 0x80:
                        out.append(op_id)
                    else:
                        out.append((op_id & 0x7F) | 0x80)
                        out.append(op_id >> 7)
                else:
                    _encode_value(out, op_id)
                out += self._tail
                return bytes(out)
        names = _FIELDS.get(cls)
        if not names or names[0] != "op_id":
            return encode_message_v2(message)
        out = bytearray(_PREFIXES[cls])
        _encode_value(out, message.op_id)
        start = len(out)
        vals = []
        cacheable = True
        for name in names[1:]:
            value = getattr(message, name)
            _encode_value(out, value)
            if type(value) not in _IMMUTABLE_FIELD_TYPES:
                cacheable = False
            vals.append(value)
        if cacheable:
            self._cls = cls
            self._vals = tuple(vals)
            self._tail = bytes(out[start:])
        else:
            self._cls = None
        return bytes(out)


class CachedDecoder:
    """A decoder memoizing op_id-keyed repeats (mirror of the encoder).

    Query bursts and reply streams repeat one payload with a fresh
    ``op_id`` and byte-identical remaining fields.  After a full decode
    of such a payload the decoder remembers the bytes before and after
    the op_id varint plus the decoded field values; a later payload that
    matches both spans needs only its op_id varint read -- the message
    is rebuilt from the cached values (safe to share: only immutable
    types are cached).  Byte equality against a payload that already
    decoded successfully implies the same structure, so hits are exactly
    what the full decode would have produced.  Everything else -- v1
    payloads, differing bytes, mutable or op_id-less shapes -- falls
    through to :func:`repro.transport.codec.decode_message` verbatim.

    Namespaced payloads cache by *shape*, not by register: the template
    key is the five fixed bytes after the register string (``_T_MSG``,
    inner magic, type id, field count, ``_T_INT``) plus the byte-exact
    tail after the op_id varint.  A keyed read fleet answers most
    requests from a handful of shapes -- every untouched key shares one
    ``DataReply`` template, every query one request template -- so the
    hit rate is independent of how many keys are live.  The register
    string is parsed fresh on every hit (it feeds the rebuilt wrapper),
    so templates are register-agnostic by construction.
    """

    __slots__ = ("_head", "_tail", "_cls", "_pairs", "_ns")

    def __init__(self) -> None:
        self._head: Any = None
        self._tail = b""
        self._cls: Any = None
        self._pairs: dict = {}
        #: inner-prefix bytes -> tail bytes -> (inner class, pairs)
        self._ns: Dict[bytes, "OrderedDict[bytes, tuple]"] = {}

    def _decode_namespaced(self, data):
        """Rebuild a namespaced payload from a learned shape template.

        ``None`` on any mismatch; the caller falls through to the full
        decode (and re-learns the template from its result).
        """
        try:
            if data[3] != _T_STR:
                return None
            rlen = data[4]
            if rlen >= 0x80:
                return None
            rend = 5 + rlen
            tails = self._ns.get(bytes(data[rend:rend + 5]))
            if tails is None:
                return None
            pos = rend + 5
            op_id = data[pos]
            if op_id < 0x80:
                end = pos + 1
            else:
                second = data[pos + 1]
                if second < 0x80:
                    op_id = (op_id & 0x7F) | (second << 7)
                    end = pos + 2
                else:
                    op_id, end = _read_uvarint(data, pos)
            entry = tails.get(bytes(data[end:]))
            if entry is None:
                return None
            register = str(data[5:rend], "utf-8")
        except (IndexError, ProtocolError, UnicodeDecodeError):
            return None
        inner = _NEW(entry[0])
        fields = inner.__dict__
        fields.update(entry[1])
        fields["op_id"] = op_id
        message = _NEW(NamespacedMessage)
        fields = message.__dict__
        fields["register"] = register
        fields["inner"] = inner
        return message

    def _learn_namespaced(self, data, message) -> None:
        inner = message.inner
        icls = type(inner)
        names = _FIELDS.get(icls)
        if not (names and names[0] == "op_id" and _BYPASS_INIT.get(icls)):
            return
        fields = inner.__dict__
        values = [fields[name] for name in names[1:]]
        if not all(type(v) in _IMMUTABLE_FIELD_TYPES for v in values):
            return
        blob = bytes(data)
        try:
            spans = _ns_spans(blob)
        except IndexError:
            return
        if spans is None:
            return
        rkey, head_end, opid_end = spans
        rend = 5 + len(rkey)
        if head_end != rend + 5:
            return  # multi-byte inner type id; stay on the slow path
        ns = self._ns
        tails = ns.get(blob[rend:head_end])
        if tails is None:
            if len(ns) >= _NS_SHAPES_MAX:
                return
            tails = ns[blob[rend:head_end]] = OrderedDict()
        tails[blob[opid_end:]] = (icls, dict(zip(names[1:], values)))
        tails.move_to_end(blob[opid_end:])
        if len(tails) > _NS_CACHE_MAX:
            tails.popitem(last=False)

    def __call__(self, data) -> Any:
        if (_NS_FAST and self._ns and len(data) > 5
                and data[0] == MAGIC_V2 and data[1] == _NS_ID):
            message = self._decode_namespaced(data)
            if message is not None:
                return message
        head = self._head
        if head is not None:
            hl = len(head)
            if len(data) > hl and data[:hl] == head:
                try:
                    op_id = data[hl]
                    if op_id < 0x80:
                        end = hl + 1
                    else:
                        second = data[hl + 1]
                        if second < 0x80:
                            # Two-byte varint: op_ids live here from the
                            # 129th operation of a client's lifetime on.
                            op_id = (op_id & 0x7F) | (second << 7)
                            end = hl + 2
                        else:
                            op_id, end = _read_uvarint(data, hl)
                except (IndexError, ProtocolError):
                    end = None  # truncated varint; let the full decode report it
                if end is not None and data[end:] == self._tail:
                    message = _NEW(self._cls)
                    fields = message.__dict__
                    fields.update(self._pairs)
                    fields["op_id"] = op_id
                    return message
        from repro.transport.codec import decode_message

        message = decode_message(data)
        cls = type(message)
        if cls is NamespacedMessage:
            if _NS_FAST and data[0] == MAGIC_V2:
                self._learn_namespaced(data, message)
            return message
        names = _FIELDS.get(cls)
        if (data[0] == MAGIC_V2 and names and names[0] == "op_id"
                and _BYPASS_INIT.get(cls)):
            fields = message.__dict__
            values = [fields[name] for name in names[1:]]
            if all(type(v) in _IMMUTABLE_FIELD_TYPES for v in values):
                blob = bytes(data)
                pos = 1
                if blob[pos] < 0x80:
                    pos += 1
                else:
                    _, pos = _read_uvarint(blob, pos)
                if blob[pos] < 0x80:
                    pos += 1
                else:
                    _, pos = _read_uvarint(blob, pos)
                if blob[pos] == _T_INT:
                    head_end = pos + 1
                    if blob[head_end] < 0x80:
                        opid_end = head_end + 1
                    else:
                        _, opid_end = _read_uvarint(blob, head_end)
                    self._head = blob[:head_end]
                    self._tail = blob[opid_end:]
                    self._cls = cls
                    self._pairs = dict(zip(names[1:], values))
        return message


def peek_op_id_v2(data) -> Any:
    """The ``op_id`` of a v2 payload, read without decoding the message.

    Namespaced payloads are peeked *through*: the register string is
    skipped and the inner message's ``op_id`` returned, so keyed reply
    streams route as cheaply as bare ones.  Returns ``None`` for
    anything else -- v1 payloads, messages whose first field is not
    ``op_id``, or bytes too malformed to peek at; callers fall back to
    the full decode, which reports malformations properly.  Reply pumps
    use this to route (or drop) a reply by ``op_id`` before paying for
    its decode: surplus replies past the quorum and stale replies to
    finished operations never need their payloads parsed at all.
    """
    try:
        if data[0] != MAGIC_V2:
            return None
        pos = 1
        type_id = data[pos]
        if type_id < 0x80:
            pos += 1
        else:
            type_id, pos = _read_uvarint(data, pos)
        if type_id == _NS_ID:
            # Skip the wrapper: nfields, register string, _T_MSG, magic.
            nfields = data[pos]
            if nfields < 0x80:
                pos += 1
            else:
                nfields, pos = _read_uvarint(data, pos)
            if data[pos] != _T_STR:
                return None
            rlen = data[pos + 1]
            if rlen < 0x80:
                pos += 2
            else:
                rlen, pos = _read_uvarint(data, pos + 1)
            pos += rlen
            if data[pos] != _T_MSG or data[pos + 1] != MAGIC_V2:
                return None
            pos += 2
            type_id = data[pos]
            if type_id < 0x80:
                pos += 1
            else:
                type_id, pos = _read_uvarint(data, pos)
        if type_id >= len(_BY_ID) or not _OPID_FIRST[type_id]:
            return None
        nfields = data[pos]
        if nfields < 0x80:
            pos += 1
        else:
            nfields, pos = _read_uvarint(data, pos)
        if data[pos] != _T_INT:
            return None
        value = data[pos + 1]
        if value < 0x80:
            return value
        second = data[pos + 2]
        if second < 0x80:
            return (value & 0x7F) | (second << 7)
        value, _ = _read_uvarint(data, pos + 1)
        return value
    except (IndexError, ProtocolError):
        return None
