"""HMAC-SHA256 message authentication.

The system model assumes channels "provide message authentication using
digital signatures", preventing Byzantine servers from spreading
misinformation about a message's sender.  The asyncio runtime realises this
with per-process HMAC keys: every process holds its own signing key, and
every verifier knows every process's key (a symmetric stand-in for a PKI --
adequate because the model's adversary forges *senders*, not arbitrary
third-party messages).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Iterable

from repro.errors import AuthenticationError
from repro.types import ProcessId


class KeyChain:
    """Per-process signing keys, derivable from one cluster secret.

    When built :meth:`from_secret`, keys for processes not seen before are
    derived on demand -- every cluster member can then verify any process
    that knows the secret, without pre-registering the full client roster.
    """

    def __init__(self, keys: Dict[ProcessId, bytes],
                 secret: bytes = None) -> None:
        self._keys = dict(keys)
        self._secret = secret

    @classmethod
    def from_secret(cls, secret: bytes,
                    processes: Iterable[ProcessId] = ()) -> "KeyChain":
        """Derive one key per process from a shared cluster secret."""
        keys = {
            pid: cls._derive(secret, pid)
            for pid in processes
        }
        return cls(keys, secret=secret)

    @staticmethod
    def _derive(secret: bytes, pid: ProcessId) -> bytes:
        return hashlib.sha256(secret + b"|" + pid.encode()).digest()

    def key_for(self, pid: ProcessId) -> bytes:
        """The signing key of ``pid``; derives it when a secret is set."""
        if pid not in self._keys:
            if self._secret is None:
                raise AuthenticationError(f"no key registered for {pid!r}")
            self._keys[pid] = self._derive(self._secret, pid)
        return self._keys[pid]

    def add(self, pid: ProcessId, key: bytes) -> None:
        """Register (or rotate) a process key."""
        self._keys[pid] = key

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._keys


class Authenticator:
    """Signs and verifies framed messages with HMAC-SHA256."""

    def __init__(self, keychain: KeyChain) -> None:
        self.keychain = keychain

    def sign(self, sender: ProcessId, payload: bytes) -> bytes:
        """MAC over ``sender || payload`` with the sender's key."""
        key = self.keychain.key_for(sender)
        return hmac.new(key, sender.encode() + b"|" + payload, hashlib.sha256).digest()

    def verify(self, sender: ProcessId, payload: bytes, signature: bytes) -> None:
        """Raise :class:`AuthenticationError` unless the MAC checks out."""
        expected = self.sign(sender, payload)
        if not hmac.compare_digest(expected, signature):
            raise AuthenticationError(
                f"bad signature on message claiming to be from {sender!r}"
            )

    def seal(self, sender: ProcessId, payload: bytes) -> bytes:
        """Produce a self-contained signed envelope: sender|sig|payload."""
        signature = self.sign(sender, payload)
        sender_bytes = sender.encode()
        return (len(sender_bytes).to_bytes(2, "big") + sender_bytes
                + signature + payload)

    def open(self, sealed: bytes) -> tuple:
        """Verify a sealed envelope; returns ``(sender, payload)``."""
        if len(sealed) < 2:
            raise AuthenticationError("truncated envelope")
        name_len = int.from_bytes(sealed[:2], "big")
        if len(sealed) < 2 + name_len + 32:
            raise AuthenticationError("truncated envelope")
        sender = sealed[2:2 + name_len].decode()
        signature = sealed[2 + name_len:2 + name_len + 32]
        payload = sealed[2 + name_len + 32:]
        self.verify(sender, payload, signature)
        return sender, payload
