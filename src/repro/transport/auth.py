"""HMAC-SHA256 message authentication.

The system model assumes channels "provide message authentication using
digital signatures", preventing Byzantine servers from spreading
misinformation about a message's sender.  The asyncio runtime realises this
with per-process HMAC keys: every process holds its own signing key, and
every verifier knows every process's key (a symmetric stand-in for a PKI --
adequate because the model's adversary forges *senders*, not arbitrary
third-party messages).

Two envelope shapes share the wire:

* **single** -- ``name_len(2) | sender | sig(32) | payload``: one MAC per
  payload, the v1 format every release has spoken.
* **batch** -- ``0xFFFF | name_len(2) | sender | sig(32) | count(4) |
  (len(4) | payload)*``: one MAC over a whole coalesced burst, with
  per-frame offsets recovered from the length prefixes.  ``0xFFFF`` is
  an impossible sender-name length (names are capped at
  :data:`MAX_SENDER_BYTES`), so :meth:`Authenticator.open_any`
  distinguishes the shapes without negotiation and a connection may mix
  both freely.

Hot-path caches: per-sender key lookups, encoded names and the HMAC key
schedule (via ``hmac.new(...).copy()``) are computed once per sender and
reused for every subsequent seal/verify, which matters when a burst of
frames shares one signer.
"""

from __future__ import annotations

import hashlib
import hmac
from struct import Struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AuthenticationError
from repro.types import ProcessId

#: Upper bound on an encoded sender name.  Real process ids are a few
#: bytes; anything close to the 2-byte field's range is an attack or a
#: corrupted frame, and rejecting it before slicing keeps a bogus
#: ``name_len`` from walking past the envelope.
MAX_SENDER_BYTES = 255

#: First two bytes of a batch envelope -- deliberately an impossible
#: ``name_len`` so the two envelope shapes cannot be confused.
BATCH_MARKER = b"\xff\xff"

#: Byte length of an HMAC-SHA256 signature.
_SIG_BYTES = 32

#: Soft cap on the payload bytes one batch envelope carries; bursts
#: larger than this are split so no frame approaches the frame cap.
MAX_BATCH_BYTES = 1024 * 1024

_PACK_U16 = Struct(">H").pack
_PACK_U32 = Struct(">I").pack
_UNPACK_U32 = Struct(">I").unpack_from


class KeyChain:
    """Per-process signing keys, derivable from one cluster secret.

    When built :meth:`from_secret`, keys for processes not seen before are
    derived on demand -- every cluster member can then verify any process
    that knows the secret, without pre-registering the full client roster.
    """

    def __init__(self, keys: Dict[ProcessId, bytes],
                 secret: Optional[bytes] = None) -> None:
        self._keys = dict(keys)
        self._secret = secret
        #: Bumped on every explicit rotation so caches can invalidate.
        self.version = 0

    @classmethod
    def from_secret(cls, secret: bytes,
                    processes: Iterable[ProcessId] = ()) -> "KeyChain":
        """Derive one key per process from a shared cluster secret."""
        keys = {
            pid: cls._derive(secret, pid)
            for pid in processes
        }
        return cls(keys, secret=secret)

    @staticmethod
    def _derive(secret: bytes, pid: ProcessId) -> bytes:
        return hashlib.sha256(secret + b"|" + pid.encode()).digest()

    def key_for(self, pid: ProcessId) -> bytes:
        """The signing key of ``pid``; derives it when a secret is set."""
        if pid not in self._keys:
            if self._secret is None:
                raise AuthenticationError(f"no key registered for {pid!r}")
            self._keys[pid] = self._derive(self._secret, pid)
        return self._keys[pid]

    def add(self, pid: ProcessId, key: bytes) -> None:
        """Register (or rotate) a process key."""
        self._keys[pid] = key
        self.version += 1

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._keys


class _SenderState:
    """Cached per-sender signing material."""

    __slots__ = ("name", "head", "mac")

    def __init__(self, pid: ProcessId, key: bytes) -> None:
        raw = pid.encode()
        if len(raw) > MAX_SENDER_BYTES:
            raise AuthenticationError(
                f"sender name of {len(raw)} bytes exceeds the cap")
        self.name = raw
        #: ``name_len | sender`` -- the envelope head both shapes share.
        self.head = _PACK_U16(len(raw)) + raw
        #: Keyed MAC with the ``sender|`` prefix absorbed; ``.copy()``
        #: skips the per-message key schedule.
        self.mac = hmac.new(key, raw + b"|", hashlib.sha256)


class Authenticator:
    """Signs and verifies framed messages with HMAC-SHA256."""

    def __init__(self, keychain: KeyChain) -> None:
        self.keychain = keychain
        self._senders: Dict[ProcessId, _SenderState] = {}
        self._names: Dict[bytes, Tuple[str, _SenderState]] = {}
        self._version = keychain.version

    def _state_for(self, pid: ProcessId) -> _SenderState:
        if self._version != self.keychain.version:
            self._senders.clear()
            self._names.clear()
            self._version = self.keychain.version
        state = self._senders.get(pid)
        if state is None:
            state = _SenderState(pid, self.keychain.key_for(pid))
            self._senders[pid] = state
        return state

    def _state_for_name(self, raw: bytes) -> Tuple[str, _SenderState]:
        if self._version != self.keychain.version:
            self._senders.clear()
            self._names.clear()
            self._version = self.keychain.version
        cached = self._names.get(raw)
        if cached is None:
            try:
                sender = raw.decode()
            except UnicodeDecodeError as exc:
                raise AuthenticationError(
                    f"undecodable sender name: {exc}") from exc
            cached = (sender, self._state_for(sender))
            self._names[raw] = cached
        return cached

    def sign(self, sender: ProcessId, payload) -> bytes:
        """MAC over ``sender || payload`` with the sender's key."""
        mac = self._state_for(sender).mac.copy()
        mac.update(payload)
        return mac.digest()

    def verify(self, sender: ProcessId, payload, signature) -> None:
        """Raise :class:`AuthenticationError` unless the MAC checks out."""
        expected = self.sign(sender, payload)
        if not hmac.compare_digest(expected, bytes(signature)):
            raise AuthenticationError(
                f"bad signature on message claiming to be from {sender!r}"
            )

    def seal(self, sender: ProcessId, payload) -> bytes:
        """Produce a self-contained signed envelope: sender|sig|payload."""
        state = self._state_for(sender)
        mac = state.mac.copy()
        mac.update(payload)
        return state.head + mac.digest() + payload

    def seal_batch(self, sender: ProcessId, payloads: List[bytes]) -> bytes:
        """Seal a burst of payloads under **one** MAC.

        The signature covers the whole payload section (count plus every
        length-prefixed payload), so per-frame tampering, reordering and
        truncation are all detected by the single verify in
        :meth:`open_any`.
        """
        state = self._state_for(sender)
        parts = [_PACK_U32(len(payloads))]
        for payload in payloads:
            parts.append(_PACK_U32(len(payload)))
            parts.append(payload)
        body = b"".join(parts)
        mac = state.mac.copy()
        mac.update(body)
        return BATCH_MARKER + state.head + mac.digest() + body

    def seal_frames(self, sender: ProcessId, payloads: List[bytes],
                    batch: bool = True) -> List[bytes]:
        """Seal a burst into wire frames, batching when it pays off.

        One-payload bursts (and ``batch=False``, the v1 wire mode) use
        the single envelope; larger bursts collapse into batch envelopes
        of at most :data:`MAX_BATCH_BYTES` payload bytes each, replacing
        N HMACs with one per envelope.
        """
        if not batch or len(payloads) == 1:
            return [self.seal(sender, payload) for payload in payloads]
        frames: List[bytes] = []
        chunk: List[bytes] = []
        size = 0
        for payload in payloads:
            if chunk and size + len(payload) > MAX_BATCH_BYTES:
                frames.append(self.seal_batch(sender, chunk)
                              if len(chunk) > 1 else
                              self.seal(sender, chunk[0]))
                chunk, size = [], 0
            chunk.append(payload)
            size += len(payload)
        if chunk:
            frames.append(self.seal_batch(sender, chunk)
                          if len(chunk) > 1 else self.seal(sender, chunk[0]))
        return frames

    def open(self, sealed) -> tuple:
        """Verify a single sealed envelope; returns ``(sender, payload)``."""
        if len(sealed) < 2:
            raise AuthenticationError("truncated envelope")
        name_len = sealed[0] << 8 | sealed[1]
        if name_len > MAX_SENDER_BYTES:
            raise AuthenticationError(
                f"absurd sender name length {name_len}")
        if len(sealed) < 2 + name_len + _SIG_BYTES:
            raise AuthenticationError("truncated envelope")
        view = memoryview(sealed)
        sender, state = self._state_for_name(bytes(view[2:2 + name_len]))
        signature = view[2 + name_len:2 + name_len + _SIG_BYTES]
        payload = view[2 + name_len + _SIG_BYTES:]
        mac = state.mac.copy()
        mac.update(payload)
        if not hmac.compare_digest(mac.digest(), bytes(signature)):
            raise AuthenticationError(
                f"bad signature on message claiming to be from {sender!r}"
            )
        return sender, payload

    def open_batch(self, sealed) -> Tuple[ProcessId, List[memoryview]]:
        """Verify a batch envelope; returns ``(sender, payloads)``.

        One MAC check covers every payload; the returned views alias the
        input buffer (zero-copy -- decode them before recycling it).
        """
        view = memoryview(sealed)
        if len(view) < 4:
            raise AuthenticationError("truncated batch envelope")
        name_len = view[2] << 8 | view[3]
        if name_len > MAX_SENDER_BYTES:
            raise AuthenticationError(
                f"absurd sender name length {name_len}")
        body_at = 4 + name_len + _SIG_BYTES
        if len(view) < body_at + 4:
            raise AuthenticationError("truncated batch envelope")
        sender, state = self._state_for_name(bytes(view[4:4 + name_len]))
        signature = view[body_at - _SIG_BYTES:body_at]
        body = view[body_at:]
        mac = state.mac.copy()
        mac.update(body)
        if not hmac.compare_digest(mac.digest(), bytes(signature)):
            raise AuthenticationError(
                f"bad signature on batch claiming to be from {sender!r}"
            )
        body_len = len(body)
        count = _UNPACK_U32(body, 0)[0]
        payloads: List[memoryview] = []
        unpack = _UNPACK_U32
        pos = 4
        for _ in range(count):
            if pos + 4 > body_len:
                raise AuthenticationError("batch envelope length mismatch")
            length = unpack(body, pos)[0]
            pos += 4
            end = pos + length
            if end > body_len:
                raise AuthenticationError("batch envelope length mismatch")
            payloads.append(body[pos:end])
            pos = end
        if pos != body_len:
            raise AuthenticationError("batch envelope length mismatch")
        return sender, payloads

    def open_any(self, sealed) -> Tuple[ProcessId, List[memoryview]]:
        """Verify either envelope shape; returns ``(sender, payloads)``.

        Single envelopes come back as one-element lists so read loops
        can treat every verified frame uniformly.
        """
        if len(sealed) >= 2 and sealed[0] == 0xFF and sealed[1] == 0xFF:
            return self.open_batch(sealed)
        sender, payload = self.open(sealed)
        return sender, [payload]
