"""Process-per-node cluster deployments.

Where :class:`~repro.runtime.cluster.LocalCluster` hosts every node in
one Python process (fine for tests, dishonest about crashes), this
package runs **one OS process per node** so the chaos nemesis can kill
servers the way operating systems do -- SIGKILL, no goodbye -- and the
supervisor can bring them back through real snapshot recovery.  It is
the stepping stone to the multi-host deployments the ROADMAP targets:
everything a node needs travels in one :class:`ClusterSpec` file.

* :class:`ClusterSpec` -- declarative deployment config (TOML/JSON):
  algorithm, fault budget, addresses, snapshot dirs, shared key
  material, flow-control limits.
* :func:`serve_node` / ``repro node serve`` -- the single-node process
  entrypoint with a readiness line and an authenticated health ping.
* :class:`ClusterSupervisor` / ``repro cluster serve|status|kill`` --
  spawns all node processes, waits for readiness, monitors liveness,
  and exposes ``kill``/``restart`` for the nemesis' real-crash mode.
"""

from repro.deploy.serve import (
    PING_FAILURES,
    READY_PREFIX,
    health_ping,
    serve_node,
    stats_ping,
    trace_dump,
)
from repro.deploy.spec import ClusterSpec, reserve_ports
from repro.deploy.supervisor import (
    ClusterSupervisor,
    NodeHandle,
    default_state_path,
    read_state,
)

__all__ = [
    "ClusterSpec",
    "ClusterSupervisor",
    "NodeHandle",
    "PING_FAILURES",
    "READY_PREFIX",
    "default_state_path",
    "health_ping",
    "read_state",
    "reserve_ports",
    "serve_node",
    "stats_ping",
    "trace_dump",
]
