"""Process supervision: spawn, watch, kill and restart real node processes.

:class:`ClusterSupervisor` turns a :class:`~repro.deploy.spec.ClusterSpec`
into a running cluster of OS processes -- one ``repro node serve`` child
per node -- and is the hand the chaos nemesis uses for *real* crashes:
:meth:`crash` delivers SIGKILL (no cooperation, no flushing, exactly what
the paper's crash fault model means by a server stopping), and
:meth:`restart` respawns the process, which recovers from its snapshot
and rebinds its previous port so clients can re-dial.

The supervisor exposes the same surface the in-process
:class:`~repro.runtime.cluster.LocalCluster` offers a
:class:`~repro.chaos.nemesis.Nemesis` -- ``server_ids``, ``addresses``,
``client()``, ``crash()``/``restart()`` -- so schedules made of crash and
restart steps run unchanged against either backend.  Frame-level faults
(partition, degrade, sever) still need the proxy-based chaos cluster.

A small JSON *state file* (pids + bound addresses) is written next to
the snapshots so ``repro cluster status`` and ``repro cluster kill`` can
operate on a cluster served by another process.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.deploy.serve import (
    PING_FAILURES,
    health_ping,
    parse_ready_line,
    stats_ping,
    trace_dump,
)
from repro.deploy.spec import ClusterSpec
from repro.errors import ConfigurationError
from repro.obs import MetricRegistry, MetricsExporter
from repro.runtime.client import AsyncRegisterClient
from repro.types import ProcessId

logger = logging.getLogger(__name__)


@dataclass
class NodeHandle:
    """One supervised node process."""

    node_id: ProcessId
    process: Optional[asyncio.subprocess.Process] = None
    address: Optional[Tuple[str, int]] = None
    restarts: int = 0
    _drain_task: Optional[asyncio.Task] = field(default=None, repr=False)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.returncode is None


def default_state_path(spec: ClusterSpec,
                       spec_path: Optional[str] = None) -> str:
    """Where the supervisor records pids/addresses for out-of-process CLIs."""
    if spec.snapshot_dir is not None:
        return os.path.join(spec.snapshot_dir, "cluster-state.json")
    base = spec_path or os.path.join(tempfile.gettempdir(), "repro-cluster")
    return base + ".state.json"


def read_state(state_path: str) -> Dict:
    """Load a supervisor state file; raises ConfigurationError when absent."""
    if not os.path.exists(state_path):
        raise ConfigurationError(
            f"no cluster state at {state_path!r} -- is `repro cluster "
            f"serve` running with this spec?")
    with open(state_path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class ClusterSupervisor:
    """Spawn one ``repro node serve`` process per node and babysit them.

    Usage::

        spec = ClusterSpec("bsr", f=1, snapshot_dir="/tmp/snaps")
        supervisor = ClusterSupervisor(spec)
        await supervisor.start()          # all nodes ready (health-pinged)
        client = supervisor.client("w000")
        await client.connect(); await client.write(b"v")
        supervisor.kill("s002", signal.SIGKILL)   # real crash
        await supervisor.restart("s002")          # snapshot recovery
        await supervisor.stop()
    """

    #: Nemesis capability markers: no frame-level fault plan or proxies.
    chaos_plan = None

    def __init__(self, spec: ClusterSpec, spec_path: Optional[str] = None,
                 state_path: Optional[str] = None,
                 python: str = sys.executable,
                 ready_timeout: float = 20.0,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.spec = spec
        self.spec_path = spec_path
        self.state_path = state_path or default_state_path(spec, spec_path)
        self.python = python
        self.ready_timeout = ready_timeout
        #: Supervisor-side metrics (spawns/crashes/restarts) and the
        #: default registry for clients made via :meth:`client`.  The
        #: nodes' own metrics live in *their* processes; scrape them
        #: with :meth:`scrape`.
        self.registry = registry if registry is not None else MetricRegistry()
        self.server_ids: List[ProcessId] = list(spec.node_ids)
        self.handles: Dict[ProcessId, NodeHandle] = {
            pid: NodeHandle(pid) for pid in self.server_ids}
        self.proxies: Dict[ProcessId, object] = {}
        self._clients: List[AsyncRegisterClient] = []
        self._own_spec_file = False
        #: HTTP metrics exporter sidecar (``observability.exporter_port``
        #: in the spec); ``None`` when not configured.
        self.exporter: Optional[MetricsExporter] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Spawn every node, wait for readiness, health-ping each one."""
        if self.spec_path is None:
            # Children re-load their configuration from disk: write an
            # exact copy of this spec where they (and `repro cluster
            # status`) can find it.
            directory = self.spec.snapshot_dir or tempfile.mkdtemp(
                prefix="repro-cluster-")
            os.makedirs(directory, exist_ok=True)
            self.spec_path = self.spec.save(
                os.path.join(directory, "cluster.json"))
            self._own_spec_file = True
        results = await asyncio.gather(
            *(self._spawn(pid) for pid in self.server_ids),
            return_exceptions=True)
        failures = [r for r in results if isinstance(r, BaseException)]
        if not failures:
            auth = self.spec.authenticator()
            try:
                for pid in self.server_ids:
                    await health_ping(self.handles[pid].address, auth,
                                      timeout=self.ready_timeout)
            except BaseException as exc:
                failures.append(exc)
        if failures:
            # A partial cluster is worse than none: reap every child we
            # managed to spawn before reporting the failure.
            await self._reap_all()
            raise failures[0]
        self._start_exporter()
        self._write_state()

    def _start_exporter(self) -> None:
        """Run the HTTP exporter sidecar when the spec asks for one.

        The exporter's handler threads fan StatsPing / TraceDump probes
        out to every node with their own short-lived event loop
        (``asyncio.run``), so a slow scrape stalls that one HTTP request
        -- never the supervisor's loop or the cluster.
        """
        port = self.spec.observability.get("exporter_port")
        if port is None or self.exporter is not None:
            return
        host = str(self.spec.observability.get("exporter_host",
                                               "127.0.0.1"))
        auth = self.spec.authenticator()

        def scrape_all() -> List[Dict]:
            async def gather():
                acks = await asyncio.gather(
                    *(stats_ping(address, auth)
                      for address in self.addresses.values()),
                    return_exceptions=True)
                return [ack.metrics for ack in acks
                        if not isinstance(ack, BaseException)
                        and ack.metrics]
            return asyncio.run(gather())

        def lookup(op_id: int) -> List[Dict]:
            async def gather():
                acks = await asyncio.gather(
                    *(trace_dump(address, auth, target_op=op_id)
                      for address in self.addresses.values()),
                    return_exceptions=True)
                records: List[Dict] = []
                for ack in acks:
                    if not isinstance(ack, BaseException):
                        records.extend(dict(r) for r in ack.records or ())
                return records
            return asyncio.run(gather())

        self.exporter = MetricsExporter(scrape_all, trace_lookup=lookup,
                                        host=host, port=port)
        self.exporter.start()
        logger.info("metrics exporter serving on http://%s:%d",
                    *self.exporter.address)

    async def stop(self) -> None:
        """Close clients, then SIGTERM every node (SIGKILL stragglers)."""
        if self.exporter is not None:
            self.exporter.stop()
            self.exporter = None
        for client in self._clients:
            await client.close()
        self._clients.clear()
        for handle in self.handles.values():
            if handle.running:
                handle.process.send_signal(signal.SIGTERM)
        await self._reap_all()
        if os.path.exists(self.state_path):
            os.unlink(self.state_path)

    async def _reap_all(self) -> None:
        """Wait for every spawned child (SIGKILL any that linger)."""
        for handle in self.handles.values():
            if handle.process is None:
                continue
            try:
                await asyncio.wait_for(handle.process.wait(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - stuck child
                handle.process.kill()
                await handle.process.wait()
            if handle._drain_task is not None:
                handle._drain_task.cancel()

    # -- spawning ----------------------------------------------------------
    def _command(self, node_id: ProcessId,
                 port: Optional[int]) -> List[str]:
        command = [self.python, "-m", "repro", "node", "serve",
                   "--spec", self.spec_path, "--node", str(node_id)]
        if port:
            command += ["--port", str(port)]
        return command

    def _child_env(self) -> Dict[str, str]:
        # Make sure the child can import this very copy of the package,
        # however the parent was launched.
        import repro
        package_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        return env

    async def _spawn(self, node_id: ProcessId,
                     port: Optional[int] = None) -> None:
        handle = self.handles[node_id]
        if handle._drain_task is not None:
            handle._drain_task.cancel()
            handle._drain_task = None
        process = await asyncio.create_subprocess_exec(
            *self._command(node_id, port), env=self._child_env(),
            stdout=asyncio.subprocess.PIPE)
        handle.process = process
        try:
            ready = await asyncio.wait_for(
                self._read_until_ready(node_id, process),
                timeout=self.ready_timeout)
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()
            raise ConfigurationError(
                f"node {node_id} did not report readiness within "
                f"{self.ready_timeout}s")
        handle.address = (ready[1], ready[2])
        handle._drain_task = asyncio.ensure_future(
            self._drain_stdout(node_id, process))
        self.registry.counter("supervisor_spawns_total",
                              node=str(node_id)).inc()
        logger.info("node %s up: pid %d at %s:%d", node_id, process.pid,
                    *handle.address)

    async def _read_until_ready(self, node_id: ProcessId,
                                process) -> Tuple[str, str, int]:
        while True:
            line = await process.stdout.readline()
            if not line:
                raise ConfigurationError(
                    f"node {node_id} exited (rc={process.returncode}) "
                    f"before reporting readiness")
            ready = parse_ready_line(line.decode(errors="replace"))
            if ready is not None:
                if ready[0] != str(node_id):
                    raise ConfigurationError(
                        f"process for {node_id} reported readiness as "
                        f"{ready[0]}")
                return ready

    async def _drain_stdout(self, node_id: ProcessId, process) -> None:
        # Keep the pipe from filling (a full pipe blocks the child) and
        # forward anything the node prints to our logger.
        try:
            while True:
                line = await process.stdout.readline()
                if not line:
                    return
                logger.debug("node %s: %s", node_id,
                             line.decode(errors="replace").rstrip())
        except asyncio.CancelledError:  # pragma: no cover - teardown
            return

    # -- fault injection ---------------------------------------------------
    def kill(self, node_id: ProcessId,
             signum: int = signal.SIGKILL) -> int:
        """Deliver ``signum`` to the node process; returns its pid."""
        handle = self.handles[node_id]
        if not handle.running:
            raise ConfigurationError(f"node {node_id} is not running")
        handle.process.send_signal(signum)
        return handle.process.pid

    async def crash(self, node_id: ProcessId) -> None:
        """SIGKILL the node process and wait until the OS reaps it."""
        self.kill(node_id, signal.SIGKILL)
        handle = self.handles[node_id]
        await handle.process.wait()
        if handle._drain_task is not None:
            await handle._drain_task
            handle._drain_task = None
        self.registry.counter("supervisor_crashes_total",
                              node=str(node_id)).inc()
        logger.info("node %s crashed (SIGKILL)", node_id)

    async def restart(self, node_id: ProcessId) -> None:
        """Respawn a dead node; it recovers from its snapshot.

        The previously-bound port is pinned so clients' reconnect loops
        find the node at the address they already know.
        """
        handle = self.handles[node_id]
        if handle.running:
            await self.crash(node_id)
        port = handle.address[1] if handle.address else None
        await self._spawn(node_id, port=port)
        handle.restarts += 1
        self.registry.counter("supervisor_restarts_total",
                              node=str(node_id)).inc()
        self._write_state()

    # -- observation -------------------------------------------------------
    @property
    def addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """Live node id -> ``(host, port)`` map (from readiness reports)."""
        return {pid: handle.address for pid, handle in self.handles.items()
                if handle.address is not None}

    def status(self) -> List[Dict]:
        """One dict per node: id, pid, address, running flag, restarts."""
        return [
            {
                "node": pid,
                "pid": handle.pid,
                "address": list(handle.address) if handle.address else None,
                "running": handle.running,
                "restarts": handle.restarts,
            }
            for pid, handle in self.handles.items()
        ]

    async def healthy(self, node_id: ProcessId, timeout: float = 2.0) -> bool:
        """Whether the node answers a health ping right now."""
        handle = self.handles[node_id]
        if handle.address is None:
            return False
        try:
            await health_ping(handle.address, self.spec.authenticator(),
                              timeout=timeout)
            return True
        except PING_FAILURES:
            return False

    async def scrape(self, node_id: ProcessId,
                     timeout: float = 2.0) -> Optional[Dict]:
        """The node's metric-registry snapshot, or None when unreachable."""
        handle = self.handles[node_id]
        if handle.address is None:
            return None
        try:
            ack = await stats_ping(handle.address, self.spec.authenticator(),
                                   timeout=timeout)
        except PING_FAILURES:
            return None
        return ack.metrics

    def client(self, client_id: ProcessId,
               **client_kwargs) -> AsyncRegisterClient:
        """A client wired to the live addresses (closed by :meth:`stop`)."""
        client_kwargs.setdefault("registry", self.registry)
        client = self.spec.client(client_id, addresses=self.addresses,
                                  **client_kwargs)
        self._clients.append(client)
        return client

    # -- state file --------------------------------------------------------
    def _write_state(self) -> None:
        state = {
            "spec_path": self.spec_path,
            "exporter": (
                {"host": self.exporter.host, "port": self.exporter.port}
                if self.exporter is not None else None),
            "nodes": {
                str(pid): {
                    "pid": handle.pid,
                    "host": handle.address[0] if handle.address else None,
                    "port": handle.address[1] if handle.address else None,
                    "restarts": handle.restarts,
                }
                for pid, handle in self.handles.items()
            },
        }
        os.makedirs(os.path.dirname(self.state_path) or ".", exist_ok=True)
        tmp = self.state_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.state_path)
