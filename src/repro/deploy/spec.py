"""Declarative cluster configuration: one file describes one deployment.

A :class:`ClusterSpec` is the single source of truth a process-per-node
deployment is built from: the algorithm and fault budget pick the server
count and quorums, the address block tells every party where the nodes
listen, and the shared secret derives the per-process HMAC keys
(:class:`~repro.transport.auth.KeyChain`).  The same spec file drives

* ``repro node serve --spec cluster.toml --node s002`` -- one OS process
  hosting exactly one :class:`~repro.runtime.node.RegisterServerNode`,
* :class:`~repro.deploy.supervisor.ClusterSupervisor` -- spawns and
  babysits all node processes, and
* :meth:`ClusterSpec.client` -- an
  :class:`~repro.runtime.client.AsyncRegisterClient` wired to the
  cluster's addresses, algorithm, fault budget and key material.

Specs load from TOML (stdlib ``tomllib``) or JSON and round-trip through
:meth:`to_dict`/:meth:`save` so supervisors can hand child processes an
exact copy of their own configuration.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.byzantine.behaviors import make_behavior
from repro.errors import ConfigurationError
from repro.protocols import ServerContext, get_spec, runtime_names
from repro.runtime.client import AsyncRegisterClient
from repro.runtime.node import RegisterServerNode
from repro.sharding import HashRing, KeyspaceConfig, RegisterTable
from repro.transport.auth import Authenticator, KeyChain
from repro.types import ProcessId, server_id


def reserve_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Pick ``count`` currently-free TCP ports on ``host``.

    Peer-linked protocols need every node's port written into the spec
    before any process starts (see :meth:`ClusterSpec.__post_init__`);
    tooling that used to rely on ephemeral binds calls this to pin a
    block up front.  The usual caveat applies -- the ports are free at
    probe time, not reserved -- which is fine for the single-host test
    rigs this serves.
    """
    import socket
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind((host, 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class ClusterSpec:
    """Static description of a process-per-node register deployment.

    ``base_port = 0`` (the default) lets every node bind an ephemeral
    port; the supervisor learns the real port from the node's readiness
    line and pins it across restarts.  A non-zero ``base_port`` assigns
    node ``i`` port ``base_port + i``.  ``nodes`` overrides addresses
    per node id (``{"s000": ["10.0.0.1", 7000], ...}``) for multi-host
    layouts.
    """

    algorithm: str = "bsr"
    f: int = 1
    n: Optional[int] = None
    host: str = "127.0.0.1"
    base_port: int = 0
    secret: str = "cluster-secret"
    snapshot_dir: Optional[str] = None
    initial_value: str = ""
    max_history: Optional[int] = None
    max_connections: Optional[int] = None
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    #: Per-client cap on concurrently executing operations (None = no cap).
    max_inflight: Optional[int] = None
    #: Wire encoding nodes and clients emit: ``"v2"`` (binary, batched
    #: HMAC) or ``"v1"`` (JSON, one MAC per frame).  Decoding always
    #: accepts both, so mixed-version deployments interoperate.
    wire: str = "v2"
    #: node id -> behavior name (see ``repro.byzantine.behaviors``).
    byzantine: Dict[str, str] = field(default_factory=dict)
    #: node id -> [host, port] address overrides (multi-host layouts).
    nodes: Dict[str, List[Any]] = field(default_factory=dict)
    #: Sharded keyspace block (see
    #: :class:`~repro.sharding.KeyspaceConfig`): ``group_size`` plus
    #: optional ``vnodes`` / ``seed`` / ``max_resident`` /
    #: ``max_key_len``.  When present, every node hosts a bounded
    #: per-key :class:`~repro.sharding.RegisterTable` and every client
    #: routes each key to its consistent-hash quorum group -- the same
    #: placement on every party, because it is derived from this spec.
    keyspace: Dict[str, Any] = field(default_factory=dict)
    #: Observability block: ``exporter_port`` (+ optional
    #: ``exporter_host``) makes the supervisor run an HTTP metrics
    #: exporter sidecar (``/metrics``, ``/metrics.json``,
    #: ``/traces/<op_id>``, ``/healthz``); ``trace_sample`` sets the
    #: nodes' flight-recorder sampling modulus (default 64, 0 = off)
    #: and ``trace_capacity`` the per-node record ring size.
    observability: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        proto = get_spec(self.algorithm)
        if not proto.runtime_ok:
            raise ConfigurationError(
                f"algorithm {self.algorithm!r} not supported by the runtime; "
                f"choose from {runtime_names()}"
            )
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if self.n is None:
            self.n = proto.min_servers(self.f)
        proto.validate_config(self.n, self.f)
        if proto.peer_links:
            # Server-to-server protocols dial peers from this spec, so
            # every node's port must be knowable up front -- an ephemeral
            # port exists only in the process that bound it.
            ephemeral = [pid for pid in self.node_ids
                         if self.address_of(pid)[1] == 0]
            if ephemeral:
                raise ConfigurationError(
                    f"{self.algorithm} servers message each other, so the "
                    f"spec must pin every node's port (set base_port or "
                    f"per-node addresses); ephemeral: {ephemeral}")
        unknown = set(self.byzantine) - set(self.node_ids)
        if unknown:
            raise ConfigurationError(
                f"byzantine entries for unknown nodes: {sorted(unknown)}")
        if len(self.byzantine) > self.f:
            raise ConfigurationError(
                f"{len(self.byzantine)} Byzantine nodes exceed the fault "
                f"budget f={self.f}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be at least 1, got {self.max_inflight}")
        if self.wire not in ("v1", "v2"):
            raise ConfigurationError(
                f"wire must be 'v1' or 'v2', got {self.wire!r}")
        if self.keyspace:
            self.keyspace_config().validate(self.algorithm, self.f, self.n)
        if self.observability:
            known = {"exporter_port", "exporter_host", "trace_sample",
                     "trace_capacity"}
            unknown = set(self.observability) - known
            if unknown:
                raise ConfigurationError(
                    f"unknown observability keys: {sorted(unknown)}")
            for key in ("exporter_port", "trace_sample", "trace_capacity"):
                value = self.observability.get(key)
                if value is not None and (not isinstance(value, int)
                                          or value < 0):
                    raise ConfigurationError(
                        f"observability.{key} must be a non-negative "
                        f"integer, got {value!r}")

    # -- identity and addressing ------------------------------------------
    @property
    def node_ids(self) -> List[ProcessId]:
        """Canonical server ids, in index order."""
        return [server_id(i) for i in range(self.n)]

    def address_of(self, node_id: ProcessId) -> Tuple[str, int]:
        """Configured ``(host, port)`` for ``node_id`` (port 0 = ephemeral)."""
        if node_id in self.nodes:
            host, port = self.nodes[node_id]
            return str(host), int(port)
        index = self.node_ids.index(node_id)
        port = self.base_port + index if self.base_port else 0
        return self.host, port

    @property
    def addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """Configured node id -> ``(host, port)`` map."""
        return {pid: self.address_of(pid) for pid in self.node_ids}

    def snapshot_path(self, node_id: ProcessId) -> Optional[str]:
        """Where ``node_id`` checkpoints, or ``None`` when not persistent."""
        if self.snapshot_dir is None:
            return None
        return os.path.join(self.snapshot_dir, f"{node_id}.snapshot")

    # -- keyspace placement ------------------------------------------------
    def keyspace_config(self) -> Optional[KeyspaceConfig]:
        """The parsed keyspace block, or ``None`` for single-register."""
        if not self.keyspace:
            return None
        return KeyspaceConfig.from_dict(self.keyspace)

    def ring(self) -> Optional[HashRing]:
        """The deployment's consistent-hash ring (``None`` unsharded)."""
        config = self.keyspace_config()
        if config is None:
            return None
        return config.ring(self.node_ids)

    def locate(self, key: str) -> Optional[Tuple[ProcessId, ...]]:
        """The quorum group serving ``key``, or ``None`` unsharded."""
        config = self.keyspace_config()
        if config is None:
            return None
        return config.ring(self.node_ids).group(key, config.group_size)

    # -- key material ------------------------------------------------------
    @property
    def secret_bytes(self) -> bytes:
        return self.secret.encode()

    def authenticator(self) -> Authenticator:
        """An authenticator deriving any process key from the shared secret."""
        return Authenticator(
            KeyChain.from_secret(self.secret_bytes, self.node_ids))

    # -- component construction -------------------------------------------
    def build_protocol(self, node_id: ProcessId) -> Any:
        """The server state machine ``node_id`` hosts.

        With a ``keyspace`` block this is a bounded per-key
        :class:`~repro.sharding.RegisterTable` whose factory builds one
        base protocol per touched key; otherwise the single base
        protocol itself.
        """
        config = self.keyspace_config()
        if config is not None:
            behavior_name = self.byzantine.get(node_id)
            placement = config.placement(self.node_ids)
            return RegisterTable(
                node_id,
                factory=lambda name: self._build_base_protocol(
                    node_id, servers=placement.servers_for(name)),
                behavior=make_behavior(behavior_name) if behavior_name
                else None,
                max_resident=config.max_resident,
                max_key_len=config.max_key_len,
            )
        return self._build_base_protocol(node_id)

    def _build_base_protocol(self, node_id: ProcessId,
                             servers: Optional[Tuple[ProcessId, ...]] = None
                             ) -> Any:
        proto = get_spec(self.algorithm)
        if servers is None:
            servers = tuple(self.node_ids)
        ctx = ServerContext(
            server_id=node_id,
            index=servers.index(node_id) if node_id in servers else 0,
            servers=tuple(servers),
            f=self.f,
            initial_value=self.initial_value.encode(),
            max_history=self.max_history,
            codec=(proto.make_codec(self.n, self.f)
                   if proto.make_codec is not None else None),
        )
        return proto.make_server(ctx)

    def build_node(self, node_id: ProcessId,
                   port: Optional[int] = None) -> RegisterServerNode:
        """A fully configured node for ``node_id`` (not yet started).

        ``port`` overrides the spec's address -- the supervisor uses it to
        pin a previously-bound ephemeral port across restarts.
        """
        if node_id not in self.node_ids:
            raise ConfigurationError(
                f"unknown node {node_id!r}; this spec has {self.node_ids}")
        proto = get_spec(self.algorithm)
        host, spec_port = self.address_of(node_id)
        behavior_name = self.byzantine.get(node_id)
        if self.snapshot_dir is not None and proto.snapshot_ok:
            os.makedirs(self.snapshot_dir, exist_ok=True)
        protocol = self.build_protocol(node_id)
        sharded = isinstance(protocol, RegisterTable)
        node = RegisterServerNode(
            node_id, protocol, self.authenticator(),
            host=host, port=port if port is not None else spec_port,
            # A register table applies the behaviour per key and keeps
            # its own durable story (per-key archives), so the node-level
            # behaviour/snapshot hooks stay off in sharded deployments.
            behavior=None if sharded
            else (make_behavior(behavior_name) if behavior_name else None),
            snapshot_path=(None if sharded or not proto.snapshot_ok
                           else self.snapshot_path(node_id)),
            max_connections=self.max_connections,
            rate_limit=self.rate_limit, rate_burst=self.rate_burst,
            wire=self.wire,
            flight_sample=int(self.observability.get("trace_sample", 64)),
            flight_capacity=int(
                self.observability.get("trace_capacity", 1024)),
        )
        if sharded:
            protocol.bind_registry(node.registry)
        if proto.peer_links:
            node.set_peers(self.addresses)
        return node

    def client(self, client_id: ProcessId,
               addresses: Optional[Dict[ProcessId, Tuple[str, int]]] = None,
               **client_kwargs) -> AsyncRegisterClient:
        """An :class:`AsyncRegisterClient` wired to this cluster.

        ``addresses`` overrides the spec's (pass the supervisor's live map
        when nodes bound ephemeral ports).  The spec's ``max_inflight``
        applies unless overridden here.  Extra keyword arguments pass
        through (``timeout``, ``reconnect``, ``backoff_base`` ...).
        """
        keychain = KeyChain.from_secret(self.secret_bytes,
                                        self.node_ids + [client_id])
        client_kwargs.setdefault("max_inflight", self.max_inflight)
        client_kwargs.setdefault("wire", self.wire)
        config = self.keyspace_config()
        if config is not None:
            client_kwargs.setdefault("placement",
                                     config.placement(self.node_ids))
        return AsyncRegisterClient(
            client_id, addresses if addresses is not None else self.addresses,
            self.f, Authenticator(keychain), algorithm=self.algorithm,
            initial_value=self.initial_value.encode(), **client_kwargs,
        )

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON/TOML-ready dict; ``None`` fields are omitted."""
        raw = dataclasses.asdict(self)
        return {key: value for key, value in raw.items()
                if value is not None and value != {} }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown cluster spec keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_file(cls, path: str) -> "ClusterSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        with open(path, "rb") as fh:
            raw = fh.read()
        if path.endswith(".toml"):
            import tomllib
            data = tomllib.loads(raw.decode())
        else:
            try:
                data = json.loads(raw.decode())
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"cluster spec {path!r} is not valid JSON: {exc}"
                ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError(f"cluster spec {path!r} must be a table")
        return cls.from_dict(data)

    def save(self, path: str) -> str:
        """Write the spec as JSON (loadable by :meth:`from_file`)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path
