"""``repro node serve``: one OS process hosting one register server node.

The process lifecycle is deliberately boring, because supervisors depend
on it:

1. build the node from the :class:`~repro.deploy.spec.ClusterSpec`,
2. bind the listener (restoring any snapshot first),
3. emit one readiness line -- ``REPRO-NODE-READY <node> <host> <port>``
   -- on stdout and flush it (the supervisor blocks on this line; the
   port matters because specs default to ephemeral ports),
4. serve until SIGTERM/SIGINT, then stop cleanly (SIGKILL is the
   nemesis' job and needs no cooperation).

:func:`health_ping` is the matching probe: it dials a node, sends a
:class:`~repro.core.messages.HealthPing` frame through the normal
authenticated framing, and returns the node's
:class:`~repro.core.messages.HealthAck` -- proof the process is not just
accepting TCP but authenticating, decoding and replying.
:func:`stats_ping` is its scrape twin: same path, but the answer is the
node's full metric-registry snapshot (a
:class:`~repro.core.messages.StatsAck`).
"""

from __future__ import annotations

import asyncio
import logging
import signal
import sys
from typing import IO, Optional, Tuple

from repro.core.messages import (
    HealthAck,
    HealthPing,
    StatsAck,
    StatsPing,
    TraceAck,
    TraceDump,
)
from repro.deploy.spec import ClusterSpec
from repro.errors import ProtocolError
from repro.transport.auth import Authenticator
from repro.transport.codec import (
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.types import ProcessId

logger = logging.getLogger(__name__)

#: First token of the readiness line a node prints once it is bound.
READY_PREFIX = "REPRO-NODE-READY"

#: Everything :func:`health_ping` raises when a node is unhealthy.
PING_FAILURES = (OSError, EOFError, asyncio.TimeoutError, ProtocolError)


def format_ready_line(node_id: ProcessId, host: str, port: int) -> str:
    """The readiness line ``repro node serve`` prints after binding."""
    return f"{READY_PREFIX} {node_id} {host} {port}"


def parse_ready_line(line: str) -> Optional[Tuple[str, str, int]]:
    """``(node_id, host, port)`` if ``line`` is a readiness line, else None."""
    parts = line.strip().split()
    if len(parts) == 4 and parts[0] == READY_PREFIX:
        try:
            return parts[1], parts[2], int(parts[3])
        except ValueError:
            return None
    return None


async def serve_node(spec: ClusterSpec, node_id: ProcessId,
                     port: Optional[int] = None,
                     ready_out: Optional[IO[str]] = None,
                     stop_event: Optional[asyncio.Event] = None) -> None:
    """Run one node until SIGTERM/SIGINT (or ``stop_event``) fires.

    ``port`` pins the listener (supervisors pass the previously-bound
    port on restart so clients can re-dial the same address);
    ``ready_out`` defaults to stdout.
    """
    node = spec.build_node(node_id, port=port)
    await node.start()
    stream = ready_out if ready_out is not None else sys.stdout
    print(format_ready_line(node_id, node.host, node.port),
          file=stream, flush=True)

    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loop; rely on stop_event / KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        await node.stop()
        logger.info("node %s stopped", node_id)


async def _node_ping(address: Tuple[str, int], auth: Authenticator, ping,
                     expect: type, probe_id: ProcessId, timeout: float):
    """Send one node-level request frame and await its typed reply."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(*address), timeout)
    try:
        write_frame(writer, auth.seal(probe_id, encode_message(ping)))
        await writer.drain()
        frame = await asyncio.wait_for(read_frame(reader), timeout)
        # The node may reply on either wire shape (batch-sealed on v2).
        sender, payloads = auth.open_any(frame)
        message = decode_message(payloads[0])
        if not isinstance(message, expect):
            raise ProtocolError(
                f"expected {expect.__name__} from {sender}, got "
                f"{type(message).__name__}")
        return message
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def health_ping(address: Tuple[str, int], auth: Authenticator,
                      probe_id: ProcessId = "probe",
                      timeout: float = 2.0) -> HealthAck:
    """Probe a node end to end; raises ``OSError``/``TimeoutError`` on failure.

    The probe exercises the full stack -- TCP accept, HMAC verification,
    frame decoding -- so a positive answer means the node can serve real
    protocol traffic, not merely that something listens on the port.
    """
    return await _node_ping(address, auth, HealthPing(op_id=1), HealthAck,
                            probe_id, timeout)


async def stats_ping(address: Tuple[str, int], auth: Authenticator,
                     probe_id: ProcessId = "probe",
                     timeout: float = 2.0) -> StatsAck:
    """Scrape a node's metric registry over the authenticated framing.

    The returned :class:`~repro.core.messages.StatsAck` carries the
    node's :meth:`~repro.obs.MetricRegistry.snapshot` document --
    counters, gauges and per-phase histograms -- ready for
    :func:`repro.obs.render_prometheus` or JSON reporting.
    """
    return await _node_ping(address, auth, StatsPing(op_id=1), StatsAck,
                            probe_id, timeout)


async def trace_dump(address: Tuple[str, int], auth: Authenticator,
                     target_op: int = -1, limit: int = 0,
                     probe_id: ProcessId = "probe",
                     timeout: float = 2.0) -> TraceAck:
    """Scrape a node's flight-recorder records (server-side span halves).

    ``target_op`` narrows the dump to one operation (``-1`` = all
    retained records); ``limit`` keeps only the newest that many.  The
    returned :class:`~repro.core.messages.TraceAck` records join with
    client span records through :func:`repro.obs.stitch`.
    """
    return await _node_ping(address, auth,
                            TraceDump(op_id=1, target_op=target_op,
                                      limit=limit),
                            TraceAck, probe_id, timeout)
