"""Shared primitive types used across the library.

The paper's system model (Section II-A) has three process roles -- readers,
writers and servers -- each with a unique identifier drawn from a totally
ordered set.  We use plain strings for identifiers (lexicographic order gives
the required total order) and small dataclasses/enums for everything else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Tuple

#: A process identifier.  The paper only requires that the union of reader,
#: writer and server IDs is totally ordered; strings compared lexicographically
#: satisfy that.
ProcessId = str

#: A (destination, message) pair emitted by a protocol state machine.
Envelope = Tuple[ProcessId, Any]


class Role(enum.Enum):
    """The three process roles of the system model (Section II-A)."""

    READER = "reader"
    WRITER = "writer"
    SERVER = "server"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FailureMode(enum.Enum):
    """How a process may misbehave.

    Servers may be Byzantine (arbitrary behaviour); clients may only crash
    (Section II-A: "All clients may suffer crash failures; otherwise, they
    follow the protocol specification").
    """

    CORRECT = "correct"
    CRASH = "crash"
    BYZANTINE = "byzantine"


def server_id(index: int) -> ProcessId:
    """Canonical server identifier for server ``index`` (zero-based)."""
    return f"s{index:03d}"


def writer_id(index: int) -> ProcessId:
    """Canonical writer identifier for writer ``index`` (zero-based)."""
    return f"w{index:03d}"


def reader_id(index: int) -> ProcessId:
    """Canonical reader identifier for reader ``index`` (zero-based)."""
    return f"r{index:03d}"


@dataclass(frozen=True)
class SystemConfig:
    """Static description of a register deployment.

    Parameters
    ----------
    n:
        Number of servers.
    f:
        Maximum number of Byzantine-faulty servers tolerated.
    num_writers / num_readers:
        Client population sizes; used by simulation drivers to mint IDs.
    """

    n: int
    f: int
    num_writers: int = 1
    num_readers: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need at least one server, got n={self.n}")
        if self.f < 0:
            raise ValueError(f"f must be non-negative, got f={self.f}")
        if self.num_writers < 0 or self.num_readers < 0:
            raise ValueError("client counts must be non-negative")

    @property
    def servers(self) -> Tuple[ProcessId, ...]:
        """IDs of all servers, in index order."""
        return tuple(server_id(i) for i in range(self.n))

    @property
    def writers(self) -> Tuple[ProcessId, ...]:
        """IDs of all writers, in index order."""
        return tuple(writer_id(i) for i in range(self.num_writers))

    @property
    def readers(self) -> Tuple[ProcessId, ...]:
        """IDs of all readers, in index order."""
        return tuple(reader_id(i) for i in range(self.num_readers))

    @property
    def quorum(self) -> int:
        """The reply count every operation waits for: ``n - f`` (Lemma 6)."""
        return self.n - self.f


@dataclass
class Measurement:
    """A single scalar measurement with a label, used by metric reports."""

    name: str
    value: float
    unit: str = ""
    extra: dict = field(default_factory=dict)
