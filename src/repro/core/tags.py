"""Tags: the logical timestamps ordering writes.

A tag is a pair ``(num, writer)`` (Fig. 1, line 6 of the paper).  Tags are
totally ordered lexicographically: first by the integer ``num``, then by the
writer identifier, using the total order on process IDs the system model
assumes.  Ties between concurrent writes that picked the same ``num`` are
thereby broken deterministically (Lemma 2, Case 2).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Tuple

from repro.types import ProcessId

#: Bytes a tag occupies on the wire (an int plus a short writer id).  Lives
#: here, next to the type, so payload carriers (messages, namespace
#: wrappers) and the tagged values themselves charge the same amount.
TAG_BYTES = 12


@functools.total_ordering
@dataclass(frozen=True)
class Tag:
    """A write timestamp ``(num, writer)`` with lexicographic total order."""

    num: int
    writer: ProcessId

    def __post_init__(self) -> None:
        if self.num < 0:
            raise ValueError(f"tag number must be non-negative, got {self.num}")

    def _key(self) -> Tuple[int, ProcessId]:
        return (self.num, self.writer)

    def __lt__(self, other: "Tag") -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return self._key() < other._key()

    def next_for(self, writer: ProcessId) -> "Tag":
        """The tag a write by ``writer`` creates after observing this tag."""
        return Tag(self.num + 1, writer)

    def to_wire(self) -> Tuple[int, str]:
        """Serializable representation (used by the asyncio codec)."""
        return (self.num, self.writer)

    @classmethod
    def from_wire(cls, wire: Tuple[int, str]) -> "Tag":
        """Inverse of :meth:`to_wire`."""
        num, writer = wire
        return cls(int(num), str(writer))

    def wire_size(self) -> int:
        """Approximate on-the-wire size of a tag."""
        return TAG_BYTES

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.num},{self.writer})"


#: The tag of the initial value ``v0`` -- smaller than every real write's
#: tag because real writers have non-empty IDs and write numbers >= 1.
TAG_ZERO = Tag(0, "")


@dataclass(frozen=True)
class TaggedValue:
    """A ``(tag, value)`` pair as stored by servers and exchanged on the wire.

    ``value`` must be hashable (bytes recommended) so readers can count
    witnesses per distinct pair.
    """

    tag: Tag
    value: Any

    def __lt__(self, other: "TaggedValue") -> bool:
        return self.tag < other.tag

    def wire_size(self) -> int:
        """Actual encoded length of the pair: tag plus its value's bytes.

        Delegates to the value's own ``wire_size()`` when it has one (coded
        elements, nested pairs); the ``repr`` fallback only remains for
        exotic test payloads.
        """
        value = self.value
        if value is None:
            inner = 0
        elif hasattr(value, "wire_size"):
            inner = int(value.wire_size())
        elif isinstance(value, (bytes, bytearray)):
            inner = len(value)
        elif isinstance(value, str):
            inner = len(value.encode())
        else:
            inner = len(repr(value))
        return TAG_BYTES + inner

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tag}:{self.value!r}"
