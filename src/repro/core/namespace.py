"""Multi-register namespaces: many named registers per deployment.

The paper emulates a single shared register; real deployments (the
key-value stores of Section I) need many.  Because every algorithm here is
a pure state machine, multiplexing is a thin, protocol-agnostic wrapper:

* :class:`NamespacedMessage` tags any protocol message with a register name.
* :class:`NamespacedServer` routes each tagged message to a per-register
  server instance (created on demand from a factory) and tags the replies.
  A Byzantine behaviour, when present, is applied *per register server*, so
  every strategy from :mod:`repro.byzantine.behaviors` works unchanged.
* :class:`NamespacedOperation` wraps a client operation so its outgoing
  messages carry the register name and incoming replies are unwrapped.

Safety/regularity guarantees are per register: operations on different
names never interact (they touch disjoint server state), which mirrors how
per-key consistency is stated for production KV stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.keys import key_error
from repro.core.messages import BaseMessage, HEADER_BYTES
from repro.types import Envelope, ProcessId

#: Name used when the caller does not pick one.
DEFAULT_REGISTER = "default"


@dataclass(frozen=True)
class NamespacedMessage:
    """A protocol message addressed to one named register."""

    register: str
    inner: Any

    @property
    def op_id(self):
        """Expose the inner operation id (for tracing and matching)."""
        return getattr(self.inner, "op_id", None)

    def wire_size(self) -> int:
        """Inner size plus the register-name overhead."""
        inner_size = (self.inner.wire_size()
                      if hasattr(self.inner, "wire_size") else HEADER_BYTES)
        return inner_size + len(self.register)


class NamespacedServer:
    """Route namespaced messages to per-register server state machines.

    ``factory(register_name)`` builds a fresh server protocol the first
    time a register name is seen.  ``behavior`` (optional) is the Byzantine
    strategy applied to every register hosted by this server -- it sees the
    per-register server instance, exactly as in the single-register case.
    """

    def __init__(self, server_id: ProcessId,
                 factory: Callable[[str], Any],
                 behavior: Optional[Any] = None) -> None:
        self.server_id = server_id
        self._factory = factory
        self.behavior = behavior
        self.registers: Dict[str, Any] = {}

    def register_server(self, name: str) -> Any:
        """The per-register server for ``name`` (created on first use)."""
        if name not in self.registers:
            self.registers[name] = self._factory(name)
        return self.registers[name]

    def storage_bytes(self) -> int:
        """Total bytes stored across all hosted registers."""
        return sum(
            server.storage_bytes()
            for server in self.registers.values()
            if hasattr(server, "storage_bytes")
        )

    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Unwrap, route, re-wrap.  Non-namespaced messages are ignored.

        The register name is validated *before* any per-register state is
        instantiated: a tagged message carrying a non-string, oversized or
        out-of-charset name is dropped, so garbage names cannot exhaust
        the server's memory one fresh state machine at a time (see
        :mod:`repro.core.keys`).
        """
        if not isinstance(message, NamespacedMessage):
            return []
        if (message.register not in self.registers
                and key_error(message.register) is not None):
            return []
        inner_server = self.register_server(message.register)
        replies = inner_server.handle(sender, message.inner)
        if self.behavior is not None:
            replies = self.behavior.on_message(
                inner_server, sender, message.inner, replies
            )
        return [
            (dest, NamespacedMessage(register=message.register, inner=reply))
            for dest, reply in replies
        ]


class NamespacedOperation:
    """Adapt a client operation to speak to one named register.

    Exposes the :class:`~repro.core.operation.ClientOperation` surface the
    runtimes rely on (``start`` / ``on_reply`` / ``done`` / ``result`` /
    ``rounds`` / ``kind``), delegating to the wrapped operation.
    """

    def __init__(self, register: str, operation: Any) -> None:
        self.register = register
        self.operation = operation

    # -- delegated protocol surface ------------------------------------------
    @property
    def kind(self) -> str:
        """The wrapped operation's kind ("read" or "write")."""
        return self.operation.kind

    @property
    def op_id(self) -> int:
        """The wrapped operation's id."""
        return self.operation.op_id

    @property
    def done(self) -> bool:
        """Whether the wrapped operation completed."""
        return self.operation.done

    @property
    def result(self) -> Any:
        """The wrapped operation's result."""
        return self.operation.result

    @property
    def result_tag(self):
        """The wrapped operation's tag, if any."""
        return self.operation.result_tag

    @property
    def rounds(self) -> int:
        """Client-to-server rounds used so far."""
        return self.operation.rounds

    @property
    def value(self):
        """The value being written (write operations only)."""
        return getattr(self.operation, "value", None)

    # -- message flow ------------------------------------------------------------
    def _wrap(self, envelopes: List[Envelope]) -> List[Envelope]:
        return [
            (dest, NamespacedMessage(register=self.register, inner=message))
            for dest, message in envelopes
        ]

    def start(self) -> List[Envelope]:
        """Start the wrapped operation; tags every outgoing message."""
        return self._wrap(self.operation.start())

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Unwrap a namespaced reply and feed it to the wrapped operation.

        Replies for other registers (or bare messages) are ignored -- a
        Byzantine server cannot cross-wire two registers because the reader
        only accepts replies tagged for the register it asked about.
        """
        if not isinstance(message, NamespacedMessage):
            return []
        if message.register != self.register:
            return []
        return self._wrap(self.operation.on_reply(sender, message.inner))
