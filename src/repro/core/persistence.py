"""Server state persistence: snapshot and restore across crashes.

Production storage servers restart; the paper's model treats a restarted
server as having been "slow" (its state must survive).  This module
serialises a server's durable state -- the history list ``L`` -- through
the same wire codec used for messages, so a deployment can checkpoint to
disk and recover.

Byzantine-safety note: a snapshot is local state, not a protocol message;
restoring a *stale* snapshot turns the server into an honestly-slow replica,
which the protocols already tolerate (at most ``f`` of them, like any
slow/faulty server).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.baselines.abd import ABDServer
from repro.core.bcsr import BCSRServer
from repro.core.bsr import BSRServer
from repro.core.regular import RegularBSRServer
from repro.core.tags import TaggedValue
from repro.erasure.striping import StripedCodec
from repro.errors import ProtocolError
from repro.transport import codec as wire

#: Server classes persistence understands, by stable type name.
_SERVER_TYPES = {
    "BSRServer": BSRServer,
    "RegularBSRServer": RegularBSRServer,
    "ABDServer": ABDServer,
    "BCSRServer": BCSRServer,
}


def snapshot_server(server: Any) -> bytes:
    """Serialise a server's durable state to bytes.

    Works for every server class in :mod:`repro.core` and
    :mod:`repro.baselines` whose state is the history list ``L``.
    """
    type_name = type(server).__name__
    if type_name not in _SERVER_TYPES:
        raise ProtocolError(f"cannot snapshot server type {type_name}")
    payload = {
        "type": type_name,
        "server_id": server.server_id,
        "max_history": getattr(server, "max_history", None),
        "history": [wire._to_jsonable(pair) for pair in server.history],
    }
    if isinstance(server, BCSRServer):
        payload["index"] = server.index
        payload["codec"] = {"n": server.codec.n, "k": server.codec.k}
    return json.dumps(payload, separators=(",", ":")).encode()


def restore_server(snapshot: bytes, codec: Optional[StripedCodec] = None) -> Any:
    """Rebuild a server from :func:`snapshot_server` output.

    ``codec`` overrides the recorded ``[n, k]`` shape for BCSR servers
    (useful when the codec object is shared across a deployment); by
    default the recorded shape is reconstructed.
    """
    try:
        payload = json.loads(snapshot.decode())
        cls = _SERVER_TYPES[payload["type"]]
        history = [wire._from_jsonable(pair) for pair in payload["history"]]
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed server snapshot: {exc}") from exc
    if not history or not all(isinstance(p, TaggedValue) for p in history):
        raise ProtocolError("snapshot history is empty or malformed")
    if cls is BCSRServer:
        if codec is None:
            shape = payload["codec"]
            codec = StripedCodec(int(shape["n"]), int(shape["k"]))
        server = BCSRServer(payload["server_id"], int(payload["index"]), codec,
                            max_history=payload.get("max_history"))
    else:
        server = cls(payload["server_id"],
                     max_history=payload.get("max_history"))
    server.history = history
    return server
