"""The paper's contribution: BSR, BCSR and the regular-register extensions.

All protocol logic is written as transport-agnostic state machines:

* servers implement ``handle(sender, message) -> [(dest, message), ...]``;
* client operations implement ``start()`` / ``on_reply(...)`` returning
  batches of outgoing messages, plus ``done`` / ``result``.

The same classes run inside the discrete-event simulator
(:mod:`repro.core.processes`) and over real sockets (:mod:`repro.runtime`).
"""

from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.core.quorum import (
    bcsr_min_servers,
    bsr_min_servers,
    kth_highest,
    rb_min_servers,
    validate_bcsr_config,
    validate_bsr_config,
)
from repro.core.bsr import (
    BSRReadOperation,
    BSRReaderState,
    BSRServer,
    BSRWriteOperation,
)
from repro.core.bcsr import BCSRReadOperation, BCSRServer, BCSRWriteOperation
from repro.core.regular import (
    HistoryReadOperation,
    RegularBSRServer,
    TwoRoundReadOperation,
)
from repro.core.register import RegisterSystem, make_system

__all__ = [
    "Tag",
    "TaggedValue",
    "TAG_ZERO",
    "bsr_min_servers",
    "bcsr_min_servers",
    "rb_min_servers",
    "kth_highest",
    "validate_bsr_config",
    "validate_bcsr_config",
    "BSRServer",
    "BSRWriteOperation",
    "BSRReadOperation",
    "BSRReaderState",
    "BCSRServer",
    "BCSRWriteOperation",
    "BCSRReadOperation",
    "RegularBSRServer",
    "HistoryReadOperation",
    "TwoRoundReadOperation",
    "RegisterSystem",
    "make_system",
]
