"""BSR: the replication-based Byzantine-tolerant safe register (Section III).

Faithful implementation of Figures 1-3:

* **Server** (Fig 3): keeps a list ``L`` of ``(tag, value)`` pairs; answers
  ``QUERY-TAG`` with its maximum tag, stores ``PUT-DATA`` pairs whose tag
  exceeds its current maximum, and answers ``QUERY-DATA`` with the pair
  holding the highest tag.
* **Write** (Fig 1): ``get-tag`` collects ``n - f`` tag replies and selects
  the ``(f+1)``-th highest tag ``t``; ``put-data`` sends
  ``(t.num + 1, writer)`` with the value and waits for ``n - f`` acks.
* **Read** (Fig 2): one round.  The reader collects ``n - f`` data replies,
  keeps the pairs with at least ``f + 1`` witnesses, takes the highest, and
  falls back to the last value it ever returned (initially ``v0``) when no
  pair qualifies.

Resilience: ``n >= 4f + 1`` (validated at construction; Theorems 2 and 5).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.messages import (
    DataReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
    stored_size,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import kth_highest, validate_bsr_config, witness_threshold
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.types import Envelope, ProcessId


class BSRServer:
    """State machine for one BSR server (Fig 3).

    ``max_history`` bounds the length of ``L`` (the paper keeps it
    unbounded): after every store the oldest entries beyond the bound are
    pruned, newest kept.  Plain BSR only ever serves the newest pair, so
    pruning is invisible to it; the *history* read variant trades
    regularity coverage for the reclaimed space -- see the E12 ablation.
    """

    def __init__(self, server_id: ProcessId, initial_value: Any = b"",
                 max_history: Optional[int] = None) -> None:
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be at least 1")
        self.server_id = server_id
        self.max_history = max_history
        #: The write history ``L``; ``L[0]`` is the initial pair.  Kept in
        #: ascending tag order (puts only append strictly higher tags).
        self.history: List[TaggedValue] = [TaggedValue(TAG_ZERO, initial_value)]

    # -- state inspection ---------------------------------------------------
    @property
    def latest(self) -> TaggedValue:
        """The pair with the highest tag in ``L``."""
        return self.history[-1]

    @property
    def max_tag(self) -> Tag:
        """The highest tag in ``L``."""
        return self.history[-1].tag

    def storage_bytes(self) -> int:
        """Approximate bytes of user data stored (for experiment E4).

        Charges only the *current* value, matching the replication baseline
        of Section I-C where each server stores one copy of the register.
        """
        return stored_size(self.latest.value)

    # -- message handling -----------------------------------------------------
    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Dispatch one incoming message; returns outgoing envelopes."""
        # QueryData first: reads are one round of them, and the paper's
        # point is that reads dominate (writes are two rounds, rarer).
        if isinstance(message, QueryData):
            return self._get_data_resp(sender, message)
        if isinstance(message, QueryTag):
            return self._get_tag_resp(sender, message)
        if isinstance(message, PutData):
            return self._put_data_resp(sender, message)
        # Unknown messages are ignored (a correct server never crashes on
        # garbage a Byzantine client might send).
        return []

    def _get_tag_resp(self, sender: ProcessId, message: QueryTag) -> List[Envelope]:
        return [(sender, TagReply(op_id=message.op_id, tag=self.max_tag))]

    def _put_data_resp(self, sender: ProcessId, message: PutData) -> List[Envelope]:
        if message.tag > self.max_tag:
            self.history.append(TaggedValue(message.tag, message.payload))
            self._prune()
        # The ack is unconditional (Fig 3 line 7): late or duplicate puts
        # still get acknowledged, otherwise slow writers would block forever.
        return [(sender, PutAck(op_id=message.op_id, tag=message.tag))]

    def _prune(self) -> None:
        if self.max_history is not None and len(self.history) > self.max_history:
            del self.history[: len(self.history) - self.max_history]

    def history_bytes(self) -> int:
        """Approximate bytes of the whole list ``L`` (for the E12 ablation)."""
        return sum(stored_size(pair.value) for pair in self.history)

    def _get_data_resp(self, sender: ProcessId, message: QueryData) -> List[Envelope]:
        latest = self.latest
        return [(sender, DataReply(op_id=message.op_id, tag=latest.tag,
                                   payload=latest.value))]


class BSRWriteOperation(ClientOperation):
    """A two-phase BSR write (Fig 1)."""

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 value: Any, enforce_bounds: bool = True) -> None:
        super().__init__(client_id, servers, f)
        if enforce_bounds:
            validate_bsr_config(self.n, f)
        self.value = value
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-tag" and isinstance(message, TagReply):
            return self._on_tag_reply(sender, message)
        if self._phase == "put-data" and isinstance(message, PutAck):
            return self._on_ack(sender, message)
        return []

    def _on_tag_reply(self, sender: ProcessId, message: TagReply) -> List[Envelope]:
        if not isinstance(message.tag, Tag):
            return []  # malformed Byzantine reply
        self._tag_replies.add(sender, message)
        if len(self._tag_replies) < self.quorum:
            return []
        # Fig 1 line 4: the (f+1)-th highest tag survives up to f forged
        # high tags from Byzantine servers.
        tags = [reply.tag for reply in self._tag_replies.values()]
        base = kth_highest(tags, self.f + 1)
        self._tag = base.next_for(self.client_id)
        self._phase = "put-data"
        self.rounds = 2
        return self.broadcast(PutData(op_id=self.op_id, tag=self._tag, payload=self.value))

    def _on_ack(self, sender: ProcessId, message: PutAck) -> List[Envelope]:
        if message.tag != self._tag:
            return []  # ack for something else (or forged)
        self._acks.add(sender, message)
        if len(self._acks) >= self.quorum:
            self._phase = "done"
            self._complete(self._tag)
        return []


class BSRReaderState:
    """Persistent per-reader state: the last ``(tag, value)`` returned.

    Fig 2 line 1 initialises ``(t_local, v_local)`` once per reader, not per
    read; successive reads by the same reader share this object.
    """

    def __init__(self, initial_value: Any = b"") -> None:
        self.local = TaggedValue(TAG_ZERO, initial_value)

    def update(self, candidate: TaggedValue) -> None:
        """Adopt ``candidate`` if it carries a strictly higher tag."""
        if candidate.tag > self.local.tag:
            self.local = candidate


class BSRReadOperation(ClientOperation):
    """A one-shot BSR read (Fig 2).

    ``repair=True`` enables *read repair* (an extension, not in the paper):
    after deciding, the reader pushes the winning witnessed pair back to
    every server as a regular PUT-DATA.  The read still completes in one
    round -- the repair messages are fire-and-forget -- but lagging servers
    catch up without waiting for the writer's stragglers, which shrinks the
    window in which Theorem-3-style scatter can starve later reads.
    Safety is unaffected: the repaired pair has ``f + 1`` witnesses, so it
    is genuine written data under its original tag.
    """

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 reader_state: Optional[BSRReaderState] = None,
                 enforce_bounds: bool = True, repair: bool = False) -> None:
        super().__init__(client_id, servers, f)
        if enforce_bounds:
            validate_bsr_config(self.n, f)
        self.reader_state = reader_state if reader_state is not None else BSRReaderState()
        self.repair = repair
        self._replies = ReplyCollector(self.servers)

    def start(self) -> List[Envelope]:
        self.rounds = 1
        return self.broadcast(QueryData(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message) or not isinstance(message, DataReply):
            return []
        if not isinstance(message.tag, Tag):
            return []  # malformed Byzantine reply
        self._replies.add(sender, message)
        if len(self._replies) >= self.quorum:
            return self._finish()
        return []

    def _finish(self) -> List[Envelope]:
        # Fig 2 line 5: pairs witnessed by at least f + 1 distinct servers.
        witnessed = self._witnessed_pairs()
        best = max(witnessed, key=lambda tv: tv.tag) if witnessed else None
        if best is not None:
            self.reader_state.update(best)
        self._tag = self.reader_state.local.tag
        self._complete(self.reader_state.local.value)
        if self.repair and best is not None and best.tag > TAG_ZERO:
            # Fire-and-forget anti-entropy: the read is already complete.
            return self.broadcast(PutData(op_id=self.op_id, tag=best.tag,
                                          payload=best.value))
        return []

    def _witnessed_pairs(self) -> List[TaggedValue]:
        replies = list(self._replies.values())
        # Fast path: in a quiet system every server returns the same
        # pair, and quorum >= f + 1 witnesses it outright -- no need to
        # hash every (tag, value) into a Counter.
        first = replies[0]
        if (len(replies) >= witness_threshold(self.f)
                and all(reply.tag == first.tag
                        and reply.payload == first.payload
                        for reply in replies[1:])):
            return [TaggedValue(first.tag, first.payload)]
        counts: Counter = Counter()
        for reply in replies:
            try:
                counts[TaggedValue(reply.tag, reply.payload)] += 1
            except TypeError:
                continue  # unhashable junk from a Byzantine server
        threshold = witness_threshold(self.f)
        return [pair for pair, count in counts.items() if count >= threshold]
