"""Client-operation state machines.

A :class:`ClientOperation` is the transport-agnostic core of a register
operation: ``start()`` yields the initial batch of request messages, and
``on_reply(sender, message)`` consumes one reply and yields any follow-up
messages (e.g. the ``put-data`` phase of a write).  The surrounding runtime
-- simulated or asyncio -- moves the messages.

Operations track their round count so the round-complexity experiment (E7)
can read it off directly instead of inferring it from timings.
"""

from __future__ import annotations

import abc
import itertools
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProtocolError
from repro.types import Envelope, ProcessId


def _op_id_base() -> int:
    """Start of this process's private op_id range.

    A bare ``count(1)`` collides across processes: two load-rig workers
    both number their operations 1, 2, 3, ..., and the flight recorder's
    ``op_id % sample`` stitching can then merge records from *different*
    operations into one bogus trace.  Folding the pid into the high bits
    gives every process a disjoint 2**40 range while leaving the low bits
    -- the only part ``op_id % sample`` looks at -- counting exactly as
    before.
    """
    return ((os.getpid() & 0xFFFFF) << 40) | 1


_op_counter = itertools.count(_op_id_base())


def next_op_id() -> int:
    """Operation identifier unique across cooperating processes."""
    return next(_op_counter)


class ClientOperation(abc.ABC):
    """Base class for read/write operation state machines."""

    kind: str = "op"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int) -> None:
        if f < 0:
            raise ValueError("f must be non-negative")
        if len(servers) <= f:
            raise ValueError("need more than f servers")
        self.client_id = client_id
        self.servers = tuple(servers)
        self.f = f
        self.n = len(servers)
        self.op_id = next_op_id()
        self.rounds = 0
        self._done = False
        self._result: Any = None

    # -- lifecycle --------------------------------------------------------
    @abc.abstractmethod
    def start(self) -> List[Envelope]:
        """Begin the operation; returns the first batch of requests."""

    @abc.abstractmethod
    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Consume one reply; returns any follow-up requests."""

    @property
    def done(self) -> bool:
        """Whether the operation has completed."""
        return self._done

    @property
    def result(self) -> Any:
        """The operation's return value (reads: the value; writes: the tag)."""
        if not self._done:
            raise ProtocolError(f"operation {self.op_id} not complete yet")
        return self._result

    @property
    def result_tag(self):
        """Tag associated with the completed operation, if any."""
        return getattr(self, "_tag", None)

    def _complete(self, result: Any) -> None:
        self._done = True
        self._result = result

    # -- helpers ------------------------------------------------------------
    def broadcast(self, message: Any) -> List[Envelope]:
        """Address ``message`` to every server."""
        return [(server, message) for server in self.servers]

    def accepts(self, message: Any) -> bool:
        """Whether ``message`` belongs to this operation."""
        return getattr(message, "op_id", None) == self.op_id

    @property
    def quorum(self) -> int:
        """Replies to wait for: ``n - f``."""
        return self.n - self.f


class ReplyCollector:
    """Collects at most one reply per server, ignoring duplicates.

    Byzantine servers may reply several times; only the first reply counts,
    which matches the "waits for responses from n - f servers" phrasing of
    the pseudocode (a set of servers, not a multiset of messages).
    """

    def __init__(self, expected_servers: Sequence[ProcessId]) -> None:
        self._expected = set(expected_servers)
        self._replies: Dict[ProcessId, Any] = {}

    def add(self, sender: ProcessId, message: Any) -> bool:
        """Record the reply; returns True if it was fresh and expected."""
        if sender not in self._expected or sender in self._replies:
            return False
        self._replies[sender] = message
        return True

    def __len__(self) -> int:
        return len(self._replies)

    def __contains__(self, sender: ProcessId) -> bool:
        return sender in self._replies

    @property
    def replies(self) -> Dict[ProcessId, Any]:
        """Mapping of server id to its (first) reply."""
        return dict(self._replies)

    def values(self) -> List[Any]:
        """All collected reply messages."""
        return list(self._replies.values())
