"""Regular-register extensions of BSR (Section III-C).

BSR alone is *not* regular: Theorem 3 exhibits an execution (five concurrent
writes, each landing on a different server) whose read finds no pair with
``f + 1`` witnesses and falls back to ``v0``.  The paper sketches two fixes
and defers details to a technical report; both are implemented here.

**Variant (a) -- history reads** (:class:`HistoryReadOperation`): servers
return their entire write history ``L`` instead of only the latest pair.
Any write that completed before the read put its pair on ``n - f`` servers,
so the pair appears in at least ``n - 2f >= 2f + 1 > f`` of the reader's
``n - f`` histories and is witnessed.  Reads stay one-shot; the price is
larger messages.

**Variant (b) -- two-round reads** (:class:`TwoRoundReadOperation`):
round 1 gathers tag histories and picks a target tag; round 2 fetches the
value written under that tag and waits for ``f + 1`` matching replies.

.. note::
   The paper's sketch says round 1 picks "the largest tag verified by
   >= f + 1 servers".  With only ``f + 1`` witnesses, ``f`` of them may be
   Byzantine, leaving a single correct holder -- too few to ever produce the
   ``f + 1`` *matching* round-2 replies the sketch then waits for.  We
   therefore require ``2f + 1`` witnesses in round 1 (guaranteeing
   ``f + 1`` correct holders, hence round-2 termination).  Every write that
   completed before the read reaches ``n - f`` servers and is seen in at
   least ``n - 2f >= 2f + 1`` of the round-1 replies, so the stronger
   threshold never loses a completed write.  This deviation is recorded in
   DESIGN.md.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

from repro.core.bsr import BSRReaderState, BSRServer
from repro.core.messages import (
    HistoryReply,
    QueryHistory,
    QueryTagHistory,
    QueryValue,
    TagHistoryReply,
    TagReply,
    ValueReply,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import validate_bsr_config, witness_threshold
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.types import Envelope, ProcessId


class RegularBSRServer(BSRServer):
    """A BSR server that additionally serves both regular-read protocols.

    Handles everything :class:`BSRServer` does, plus:

    * ``QueryHistory`` -> ``HistoryReply`` with the whole list ``L``
      (variant a; the paper's "change line 9 of Algorithm 3").
    * ``QueryTagHistory`` -> ``TagHistoryReply`` with every stored tag
      (variant b, round 1).
    * ``QueryValue(tag)`` -> ``ValueReply`` with the matching pair, or a
      ``None`` payload when the tag is unknown (variant b, round 2).
    """

    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if isinstance(message, QueryHistory):
            return [(sender, HistoryReply(op_id=message.op_id,
                                          history=tuple(self.history)))]
        if isinstance(message, QueryTagHistory):
            tags = tuple(pair.tag for pair in self.history)
            return [(sender, TagHistoryReply(op_id=message.op_id, tags=tags))]
        if isinstance(message, QueryValue):
            return self._query_value_resp(sender, message)
        return super().handle(sender, message)

    def _query_value_resp(self, sender: ProcessId, message: QueryValue) -> List[Envelope]:
        for pair in self.history:
            if pair.tag == message.tag:
                return [(sender, ValueReply(op_id=message.op_id, tag=pair.tag,
                                            payload=pair.value))]
        return [(sender, ValueReply(op_id=message.op_id, tag=message.tag,
                                    payload=None))]


class HistoryReadOperation(ClientOperation):
    """Variant (a): one-shot read over full histories."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 reader_state: Optional[BSRReaderState] = None,
                 enforce_bounds: bool = True) -> None:
        super().__init__(client_id, servers, f)
        if enforce_bounds:
            validate_bsr_config(self.n, f)
        self.reader_state = reader_state if reader_state is not None else BSRReaderState()
        self._replies = ReplyCollector(self.servers)

    def start(self) -> List[Envelope]:
        self.rounds = 1
        return self.broadcast(QueryHistory(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message) or not isinstance(message, HistoryReply):
            return []
        self._replies.add(sender, message)
        if len(self._replies) >= self.quorum:
            self._finish()
        return []

    def _finish(self) -> None:
        counts: Counter = Counter()
        for reply in self._replies.values():
            seen = set()
            for pair in reply.history:
                if not isinstance(pair, TaggedValue) or not isinstance(pair.tag, Tag):
                    continue  # Byzantine junk
                if pair in seen:
                    continue  # a server is counted once per distinct pair
                seen.add(pair)
                try:
                    counts[pair] += 1
                except TypeError:
                    continue
        threshold = witness_threshold(self.f)
        witnessed = [pair for pair, count in counts.items() if count >= threshold]
        if witnessed:
            self.reader_state.update(max(witnessed, key=lambda tv: tv.tag))
        self._tag = self.reader_state.local.tag
        self._complete(self.reader_state.local.value)


class TwoRoundReadOperation(ClientOperation):
    """Variant (b): a slow (two-round) regular read."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 reader_state: Optional[BSRReaderState] = None,
                 enforce_bounds: bool = True) -> None:
        super().__init__(client_id, servers, f)
        if enforce_bounds:
            validate_bsr_config(self.n, f)
        self.reader_state = reader_state if reader_state is not None else BSRReaderState()
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._value_replies = ReplyCollector(self.servers)
        self._target: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTagHistory(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message):
            return []
        if self._phase == "get-tag" and isinstance(message, TagHistoryReply):
            return self._on_tag_history(sender, message)
        if self._phase == "get-data" and isinstance(message, ValueReply):
            return self._on_value(sender, message)
        return []

    def _on_tag_history(self, sender: ProcessId, message: TagHistoryReply) -> List[Envelope]:
        self._tag_replies.add(sender, message)
        if len(self._tag_replies) < self.quorum:
            return []
        counts: Counter = Counter()
        for reply in self._tag_replies.values():
            seen = set()
            for tag in reply.tags:
                if isinstance(tag, Tag) and tag not in seen:
                    seen.add(tag)
                    counts[tag] += 1
        # 2f + 1 witnesses guarantee f + 1 correct holders (see module note);
        # TAG_ZERO is held by every correct server, so a target always exists.
        strong = [tag for tag, count in counts.items() if count >= 2 * self.f + 1]
        self._target = max(strong) if strong else TAG_ZERO
        self._phase = "get-data"
        self.rounds = 2
        return self.broadcast(QueryValue(op_id=self.op_id, tag=self._target))

    def _on_value(self, sender: ProcessId, message: ValueReply) -> List[Envelope]:
        if message.tag != self._target or message.payload is None:
            return []
        self._value_replies.add(sender, message)
        counts: Counter = Counter()
        for reply in self._value_replies.values():
            try:
                counts[reply.payload] += 1
            except TypeError:
                continue
        threshold = witness_threshold(self.f)
        for value, count in counts.items():
            if count >= threshold:
                self.reader_state.update(TaggedValue(self._target, value))
                self._tag = self.reader_state.local.tag
                self._complete(self.reader_state.local.value)
                break
        return []
