"""Adapters running protocol state machines inside the simulator.

* :class:`ServerProcess` hosts any server state machine (an object exposing
  ``handle(sender, message) -> [(dest, message)]``).
* :class:`ByzantineServerProcess` wraps a server with a Byzantine behaviour
  from :mod:`repro.byzantine.behaviors`.
* :class:`ClientProcess` drives a sequence of client operations, enforcing
  the model's "at most one operation can run on a client" rule and
  recording every invocation/response in the simulator's trace.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.core.operation import ClientOperation
from repro.sim.process import Process
from repro.sim.trace import OpKind, OperationRecord
from repro.types import ProcessId


class ServerProcess(Process):
    """A correct server: delegates every message to its state machine."""

    def __init__(self, pid: ProcessId, protocol: Any) -> None:
        super().__init__(pid)
        self.protocol = protocol

    def on_message(self, sender: ProcessId, message: Any) -> None:
        if self.crashed:
            return
        self.ctx.send_all(self.protocol.handle(sender, message))


class ByzantineServerProcess(Process):
    """A Byzantine server: a behaviour mediates every interaction.

    The behaviour sees the underlying (correct) server state machine, the
    incoming message and what a correct server *would* reply, and returns
    the envelopes actually sent.  This structure expresses all the paper's
    example deviations -- "incorrect register values, incorrect timestamp
    values, no reply or multiple replies" -- as small strategy objects.
    """

    def __init__(self, pid: ProcessId, protocol: Any, behavior: Any) -> None:
        super().__init__(pid)
        self.protocol = protocol
        self.behavior = behavior

    def on_message(self, sender: ProcessId, message: Any) -> None:
        if self.crashed:
            return
        correct_replies = self.protocol.handle(sender, message)
        actual = self.behavior.on_message(self.protocol, sender, message, correct_replies)
        self.ctx.send_all(actual)


class ClientProcess(Process):
    """A client that executes scheduled operations one at a time.

    Operations are submitted as *factories* (zero-argument callables
    returning a fresh :class:`ClientOperation`) together with a desired
    start time.  If an operation is still running when the next one's start
    time arrives, the next one is queued and starts immediately after the
    current one completes -- clients are sequential (Section II-A).
    """

    def __init__(self, pid: ProcessId) -> None:
        super().__init__(pid)
        self._pending: List[Tuple[float, int, Callable[[], ClientOperation],
                                  Optional[Callable]]] = []
        self._tiebreak = itertools.count()
        self._current: Optional[ClientOperation] = None
        self._current_record: Optional[OperationRecord] = None
        self._completions: List[Tuple[ClientOperation, OperationRecord]] = []
        self._started = False

    # -- submission ---------------------------------------------------------
    def submit(self, at_time: float, op_factory: Callable[[], ClientOperation],
               on_complete: Optional[Callable] = None) -> None:
        """Request an operation to start at ``at_time`` (or later if busy)."""
        heapq.heappush(self._pending, (at_time, next(self._tiebreak),
                                       op_factory, on_complete))
        if self._started and not self.crashed:
            self._arm_next()

    @property
    def completions(self) -> List[Tuple[ClientOperation, OperationRecord]]:
        """All (operation, trace record) pairs completed by this client."""
        return list(self._completions)

    @property
    def busy(self) -> bool:
        """Whether an operation is currently in flight."""
        return self._current is not None

    @property
    def idle_with_empty_queue(self) -> bool:
        """True when nothing is running and nothing is pending."""
        return self._current is None and not self._pending

    # -- lifecycle ------------------------------------------------------------
    def on_start(self) -> None:
        self._started = True
        self._arm_next()

    def _arm_next(self) -> None:
        if self._current is not None or not self._pending:
            return
        at_time, _, _, _ = self._pending[0]
        delay = max(0.0, at_time - self.ctx.now)
        self.ctx.set_timer(delay, self._begin_next, label=f"op-start@{self.pid}")

    def _begin_next(self) -> None:
        if self.crashed or self._current is not None or not self._pending:
            return
        at_time, _, op_factory, on_complete = heapq.heappop(self._pending)
        operation = op_factory()
        self._current = operation
        self._current_on_complete = on_complete
        simulator = self.ctx._simulator
        kind = OpKind.WRITE if operation.kind == "write" else OpKind.READ
        value = getattr(operation, "value", None)
        self._current_record = simulator.trace.begin(
            self.pid, kind, self.ctx.now, value=value
        )
        register = getattr(operation, "register", None)
        if register is not None:
            self._current_record.meta["register"] = register
        self.ctx.send_all(operation.start())
        self._check_done()

    def on_message(self, sender: ProcessId, message: Any) -> None:
        if self.crashed or self._current is None:
            return
        self.ctx.send_all(self._current.on_reply(sender, message))
        self._check_done()

    def _check_done(self) -> None:
        operation = self._current
        if operation is None or not operation.done:
            return
        record = self._current_record
        simulator = self.ctx._simulator
        simulator.trace.complete(
            record, self.ctx.now, value=operation.result,
            tag=operation.result_tag, rounds=operation.rounds,
        )
        self._completions.append((operation, record))
        callback = self._current_on_complete
        self._current = None
        self._current_record = None
        self._current_on_complete = None
        if callback is not None:
            callback(operation, record)
        self._arm_next()
