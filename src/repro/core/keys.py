"""Key-name validation for multi-register keyspaces.

Every layer that materialises per-key state on first touch (the
:class:`~repro.core.namespace.NamespacedServer` wrapper, the sharded
:class:`~repro.sharding.table.RegisterTable`) validates the key *before*
instantiating anything.  Without this, any authenticated-but-buggy (or
Byzantine) client could exhaust a server's memory by spraying messages
tagged with unbounded garbage names -- each one would allocate a fresh
register state machine (key-space exhaustion DoS).

A valid key is a non-empty ``str`` of at most :data:`MAX_KEY_LENGTH`
printable non-whitespace ASCII characters.  The charset keeps keys safe
to embed in metric labels, log lines and filenames without escaping.
"""

from __future__ import annotations

from typing import Any, Optional

#: Longest accepted key name, in characters.  Bounds the per-key memory
#: an unauthenticated garbage name can pin before it is rejected, and
#: keeps ring hashing / metric labels cheap.
MAX_KEY_LENGTH = 128

#: Printable ASCII minus space (0x21..0x7E): safe in labels and paths.
_ALLOWED = frozenset(chr(c) for c in range(0x21, 0x7F))


def key_error(name: Any) -> Optional[str]:
    """Why ``name`` is not a valid key, or ``None`` when it is."""
    if not isinstance(name, str):
        return f"key must be a str, got {type(name).__name__}"
    if not name:
        return "key must not be empty"
    if len(name) > MAX_KEY_LENGTH:
        return (f"key length {len(name)} exceeds the {MAX_KEY_LENGTH}-char "
                "bound")
    for ch in name:
        if ch not in _ALLOWED:
            return f"key contains disallowed character {ch!r}"
    return None


def valid_key(name: Any) -> bool:
    """Whether ``name`` is an acceptable register/key name."""
    return key_error(name) is None


def key_name(index: int) -> str:
    """Canonical name of the ``index``-th key of a generated keyspace.

    One formatter shared by the workload generator, the benchmarks and
    the tests, so schedules and placements line up across tools.
    """
    return f"key-{index:04d}"
