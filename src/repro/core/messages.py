"""Protocol messages for BSR, BCSR, the regular variants and the baselines.

Every request carries an ``op_id`` unique per client so replies can be
matched to the operation that triggered them (clients run one operation at a
time, but stale replies from earlier operations may still arrive -- the
channels reorder).

Each message knows its approximate wire size so the network layer can do
byte accounting for the communication-cost experiments (E4): a fixed header
per message plus the payload (values, coded elements, histories).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.tags import TAG_BYTES, Tag, TaggedValue

#: Fixed per-message overhead charged by ``wire_size`` (type, ids, framing).
HEADER_BYTES = 24


def payload_size(value: Any) -> int:
    """Byte size of a value or coded element on the wire.

    Payload types that know their actual encoded length (coded elements,
    tagged values, tags) report it through their own ``wire_size()``; the
    ``repr`` fallback only remains for exotic payloads no protocol message
    carries, so the E4/E13 communication-cost numbers reflect real bytes.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if hasattr(value, "wire_size"):
        return int(value.wire_size())
    if isinstance(value, str):
        return len(value.encode())
    return len(repr(value))


def stored_size(value: Any) -> int:
    """Bytes of user data a server stores for ``value`` (experiment E4).

    Unlike :func:`payload_size` this excludes wire framing: a coded element
    counts only its data bytes, matching the ``1/k`` storage accounting of
    Section I-C.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    data = getattr(value, "data", None)
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if hasattr(value, "wire_size"):
        return int(value.wire_size())
    return len(repr(value))


@dataclass(frozen=True)
class BaseMessage:
    """Common shape: every protocol message has an originating ``op_id``."""

    op_id: int

    def wire_size(self) -> int:
        """Approximate on-the-wire size in bytes."""
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Write path (Figs 1, 3, 4, 6)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryTag(BaseMessage):
    """``QUERY-TAG``: first phase of a write (Fig 1 line 2)."""


@dataclass(frozen=True)
class TagReply(BaseMessage):
    """Server's ``get-tag-resp``: its highest stored tag (Fig 3 line 3)."""

    tag: Tag

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES


@dataclass(frozen=True)
class PutData(BaseMessage):
    """``PUT-DATA``: second phase of a write (Fig 1 line 7 / Fig 4 line 7).

    ``payload`` is the full value for BSR and a :class:`CodedElement` for
    BCSR.
    """

    tag: Tag
    payload: Any

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class PutAck(BaseMessage):
    """Server acknowledgement of a ``PUT-DATA`` (Fig 3 line 7)."""

    tag: Tag

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES


# --------------------------------------------------------------------------
# Read path (Figs 2, 3, 5, 6)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryData(BaseMessage):
    """``QUERY-DATA``: the single round of a one-shot read (Fig 2 line 3)."""


@dataclass(frozen=True)
class DataReply(BaseMessage):
    """Server's ``get-data-resp``: its highest ``(tag, value)`` pair.

    For BCSR the ``payload`` is the server's coded element.
    """

    tag: Tag
    payload: Any

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


# --------------------------------------------------------------------------
# Regular-register extensions (Section III-C)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryHistory(BaseMessage):
    """Variant (a): one-shot read requesting the full write history."""


@dataclass(frozen=True)
class HistoryReply(BaseMessage):
    """Variant (a): the server's entire write history ``L``."""

    history: Tuple[TaggedValue, ...]

    def wire_size(self) -> int:
        return HEADER_BYTES + sum(
            TAG_BYTES + payload_size(tv.value) for tv in self.history
        )


@dataclass(frozen=True)
class QueryTagHistory(BaseMessage):
    """Variant (b) round 1: ask for all tags the server has seen."""


@dataclass(frozen=True)
class TagHistoryReply(BaseMessage):
    """Variant (b) round 1 response: every tag in ``L``."""

    tags: Tuple[Tag, ...]

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES * len(self.tags)


@dataclass(frozen=True)
class QueryValue(BaseMessage):
    """Variant (b) round 2: ask for the value written under ``tag``."""

    tag: Tag

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES


@dataclass(frozen=True)
class ValueReply(BaseMessage):
    """Variant (b) round 2 response: the requested ``(tag, value)``.

    ``payload`` is ``None`` when the server does not hold the tag.
    """

    tag: Tag
    payload: Any

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


# --------------------------------------------------------------------------
# Reliable-broadcast baseline (Bracha phases + relayed data)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RBSend(BaseMessage):
    """Bracha SEND from the broadcast source."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class RBEcho(BaseMessage):
    """Bracha ECHO (server-to-server)."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class RBReady(BaseMessage):
    """Bracha READY (server-to-server)."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class Rb2Send(BaseMessage):
    """Imbs-Raynal 2-step broadcast INIT from the source (writer)."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class Rb2Witness(BaseMessage):
    """Imbs-Raynal 2-step broadcast WITNESS (server-to-server)."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class MprWrite(BaseMessage):
    """MPR register write from the writer to every server."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class MprEcho(BaseMessage):
    """MPR write echo (server-to-server vouching for a write)."""

    tag: Tag
    payload: Any
    source: str

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


@dataclass(frozen=True)
class PushData(BaseMessage):
    """Unsolicited server-to-reader update (the baseline's *relay*).

    Sent to readers with a pending query when a newer value arrives, so that
    baseline reads terminate even when the initial reply set never
    accumulates ``f + 1`` matching pairs.
    """

    tag: Tag
    payload: Any

    def wire_size(self) -> int:
        return HEADER_BYTES + TAG_BYTES + payload_size(self.payload)


# --------------------------------------------------------------------------
# Runtime-level messages (not part of any paper protocol)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class HealthPing(BaseMessage):
    """Node-level liveness probe, answered by the TCP node itself.

    Handled before the protocol state machine, so a probe works against
    any hosted algorithm (the supervisor's readiness and status checks
    use it).
    """


@dataclass(frozen=True)
class HealthAck(BaseMessage):
    """Reply to :class:`HealthPing` with a little node telemetry.

    Beyond identity and history length, the ack carries the counters a
    supervisor wants before deciding a node is merely *alive* versus
    *well*: how many frames it has served, how many it shed to rate
    limiting, and how stale its durable snapshot is (``-1`` when the
    node does not persist, or has not checkpointed yet).
    """

    node_id: str = ""
    history_len: int = 0
    frames: int = 0
    throttled: int = 0
    snapshot_age: float = -1.0
    #: RegisterTable occupancy (sharded nodes only; ``-1`` when the node
    #: hosts a single register and has no table).
    keys_resident: int = -1
    keys_archived: int = -1
    rehydrations: int = -1


@dataclass(frozen=True)
class StatsPing(BaseMessage):
    """Scrape request: ask a node for its full metric registry.

    Like :class:`HealthPing` it is answered by the TCP node itself
    (before the protocol state machine, exempt from rate limiting), so
    ``repro cluster status --metrics`` and ``repro metrics dump`` can
    scrape any hosted algorithm over the normal authenticated framing.
    """


@dataclass(frozen=True)
class StatsAck(BaseMessage):
    """Reply to :class:`StatsPing`: a metric-registry snapshot.

    ``metrics`` is the plain-JSON document produced by
    :meth:`repro.obs.MetricRegistry.snapshot` (counters, gauges and
    histogram buckets), renderable to Prometheus text with
    :func:`repro.obs.render_prometheus`.
    """

    node_id: str = ""
    metrics: Any = None


@dataclass(frozen=True)
class TraceDump(BaseMessage):
    """Scrape request for a node's flight-recorder records.

    Like :class:`StatsPing` it is answered by the TCP node itself,
    before the protocol state machine and exempt from rate limiting.
    ``target_op`` of ``-1`` asks for every retained record; a specific
    op_id narrows the dump to that operation.  ``limit`` of ``0`` means
    no cap (the recorder itself is bounded).
    """

    target_op: int = -1
    limit: int = 0


@dataclass(frozen=True)
class TraceAck(BaseMessage):
    """Reply to :class:`TraceDump`: retained server-side span records.

    ``records`` is a list of plain dicts as produced by
    :class:`repro.obs.FlightRecorder` (op_id, phase, recv instant, queue
    wait, service time, verdict); ``total`` counts every record the
    recorder has ever captured, so a scraper can tell how much history
    the bounded buffer has already evicted.
    """

    node_id: str = ""
    records: Any = None
    total: int = 0


@dataclass(frozen=True)
class Throttled(BaseMessage):
    """Flow-control error: the node shed this frame (rate limit exceeded).

    ``retry_after`` is the server's estimate of when the client's token
    bucket will hold a token again, and ``dropped`` names the shed
    message's type; the client backs off for that long and re-sends only
    the matching in-flight frame (re-sending everything pending would
    spend each refilled token on the oldest frame and starve the shed
    one).
    """

    retry_after: float = 0.0
    dropped: str = ""
