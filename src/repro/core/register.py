"""High-level facade: build and run a simulated register deployment.

:class:`RegisterSystem` assembles a complete execution -- simulator, server
processes (correct or Byzantine), client processes -- for any protocol in
the registry (:mod:`repro.protocols`).  Run ``repro algorithms`` for the
registered set and their bounds; the classics are ``bsr``, ``bsr-history``,
``bsr-2round``, ``bcsr``, ``rb``, ``abd``, plus the RB-era rival plugins
``rb2`` and ``mpr``.

Example::

    system = RegisterSystem("bsr", f=1)
    write = system.write(b"hello", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    trace = system.run()
    assert read.value == b"hello"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.byzantine.behaviors import Behavior, make_behavior
from repro.core.processes import ByzantineServerProcess, ClientProcess, ServerProcess
from repro.core.namespace import (
    DEFAULT_REGISTER,
    NamespacedOperation,
    NamespacedServer,
)
from repro.errors import ConfigurationError
from repro.protocols import OpContext, ServerContext, get_spec, names
from repro.sharding import KeyspaceConfig, RegisterTable
from repro.sim.delays import DelayModel
from repro.sim.simulator import Simulator
from repro.sim.trace import OperationRecord, Trace
from repro.types import ProcessId, reader_id, server_id, writer_id


def __getattr__(name: str):
    # Kept for callers that still import the tuple of algorithm names;
    # computed lazily so it always reflects the live registry.
    if name == "ALGORITHMS":
        return names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class OpHandle:
    """A scheduled operation; resolves after :meth:`RegisterSystem.run`."""

    client: ProcessId
    kind: str
    operation: Any = None
    record: Optional[OperationRecord] = None

    @property
    def done(self) -> bool:
        """Whether the operation completed during the run."""
        return self.record is not None and self.record.complete

    @property
    def value(self) -> Any:
        """A read's returned value (or a write's tag)."""
        if not self.done:
            raise ConfigurationError(
                f"{self.kind} by {self.client} did not complete; run() the "
                "system first or check liveness assumptions"
            )
        return self.operation.result

    @property
    def latency(self) -> Optional[float]:
        """Simulated completion latency in seconds."""
        return self.record.latency if self.record else None

    @property
    def rounds(self) -> int:
        """Client-to-server rounds the operation used."""
        return self.operation.rounds if self.operation else 0


class RegisterSystem:
    """One simulated deployment of a register algorithm."""

    def __init__(self, algorithm: str = "bsr", f: int = 1, n: Optional[int] = None,
                 num_writers: int = 2, num_readers: int = 2, seed: int = 0,
                 delay_model: Optional[DelayModel] = None,
                 byzantine: Optional[Dict[Union[int, ProcessId], Union[str, Behavior]]] = None,
                 initial_value: Any = b"", horizon: float = 1_000_000.0,
                 enforce_bounds: bool = True,
                 bcsr_k: Optional[int] = None,
                 namespaced: bool = False,
                 max_history: Optional[int] = None,
                 read_repair: bool = False,
                 keyspace: Optional[KeyspaceConfig] = None) -> None:
        spec = get_spec(algorithm)
        self.spec = spec
        self.algorithm = algorithm
        self.f = f
        self.n = n if n is not None else spec.min_servers(f)
        if enforce_bounds and self.n < spec.min_servers(f):
            raise ConfigurationError(
                f"{algorithm} requires n >= {spec.min_servers(f)} for f={f}, "
                f"got n={self.n} (pass enforce_bounds=False to experiment below "
                "the bound, e.g. for the lower-bound scenarios)"
            )
        self.initial_value = initial_value
        self.max_history = max_history
        self.read_repair = read_repair
        self._enforce_bounds = enforce_bounds
        self.sim = Simulator(seed=seed, delay_model=delay_model, horizon=horizon)
        self.server_ids = [server_id(i) for i in range(self.n)]
        if spec.make_codec is None:
            self._codec = None
        elif bcsr_k is not None:
            # Explicit dimension override for below-the-bound experiments
            # (Theorem 6 needs an [n, k] code at n = 5f, where the paper's
            # k = n - 5f is undefined).
            from repro.erasure.striping import StripedCodec
            self._codec = StripedCodec(self.n, bcsr_k)
        else:
            self._codec = spec.make_codec(self.n, f)

        byzantine = dict(byzantine or {})
        if enforce_bounds and len(byzantine) > f:
            raise ConfigurationError(
                f"{len(byzantine)} Byzantine servers exceed the budget f={f}"
            )
        normalized: Dict[ProcessId, Behavior] = {}
        for key, value in byzantine.items():
            pid = server_id(key) if isinstance(key, int) else key
            if pid not in self.server_ids:
                raise ConfigurationError(f"{pid!r} is not a server of this system")
            normalized[pid] = make_behavior(value) if isinstance(value, str) else value
        self.byzantine: Dict[ProcessId, Behavior] = normalized

        #: Sharded keyspace placement: implies namespacing, servers host
        #: a bounded :class:`~repro.sharding.RegisterTable`, and every
        #: operation is routed to its key's consistent-hash quorum group
        #: -- the *same* placement the live runtime derives from a spec,
        #: so the simulator doubles as a cheap placement testbed.
        self.keyspace = keyspace
        if keyspace is not None:
            keyspace.validate(algorithm, f, self.n)
        self.namespaced = namespaced or keyspace is not None
        namespaced = self.namespaced
        if namespaced and not spec.namespaced_ok:
            raise ConfigurationError(
                f"the {algorithm} protocol does not support namespacing"
            )
        self._placement = (keyspace.placement(self.server_ids)
                           if keyspace is not None else None)
        #: pid -> underlying server protocol object (state machine).
        self.server_protocols: Dict[ProcessId, Any] = {}
        for index, pid in enumerate(self.server_ids):
            if namespaced:
                factory = (lambda name, pid=pid:
                           self._make_server_protocol(pid, register=name))
                if keyspace is not None:
                    protocol = RegisterTable(
                        pid, factory, behavior=self.byzantine.get(pid),
                        max_resident=keyspace.max_resident,
                        max_key_len=keyspace.max_key_len,
                    )
                else:
                    protocol = NamespacedServer(
                        pid, factory=factory,
                        behavior=self.byzantine.get(pid),
                    )
                process = ServerProcess(pid, protocol)
            else:
                protocol = self._make_server_protocol(pid)
                if pid in self.byzantine:
                    process = ByzantineServerProcess(pid, protocol,
                                                     self.byzantine[pid])
                else:
                    process = ServerProcess(pid, protocol)
            self.server_protocols[pid] = protocol
            self.sim.add_process(process)

        self.writer_ids = [writer_id(i) for i in range(num_writers)]
        self.reader_ids = [reader_id(i) for i in range(num_readers)]
        self.clients: Dict[ProcessId, ClientProcess] = {}
        self._reader_states: Dict[ProcessId, Any] = {}
        for pid in self.writer_ids + self.reader_ids:
            client = ClientProcess(pid)
            self.clients[pid] = client
            self.sim.add_process(client)
        for pid in self.reader_ids:
            self._reader_states[pid] = self._new_reader_state()
        #: (reader, register) -> state, for namespaced deployments.
        self._namespaced_reader_states: Dict[tuple, Any] = {}
        self._handles: List[OpHandle] = []

    # -- construction helpers ------------------------------------------------
    def _new_reader_state(self) -> Any:
        if self.spec.make_reader_state is None:
            return None
        return self.spec.make_reader_state(self.initial_value)

    def _make_server_protocol(self, pid: ProcessId,
                              register: str = DEFAULT_REGISTER) -> Any:
        """Build one protocol instance for ``pid``.

        ``register`` matters only for sharded deployments of protocols
        with server-to-server links: the instance's peer group is the
        key's quorum group, not the whole fleet.
        """
        servers = tuple(self._op_servers(register))
        return self.spec.make_server(ServerContext(
            server_id=pid, index=servers.index(pid) if pid in servers else 0,
            servers=servers, f=self.f, initial_value=self.initial_value,
            max_history=self.max_history, codec=self._codec,
        ))

    def _op_servers(self, register: str) -> List[ProcessId]:
        """Server list an operation on ``register`` should contact.

        With a keyspace this is the key's consistent-hash quorum group
        (quorum arithmetic then runs against the group size, exactly as
        in the live runtime); otherwise it is the whole fleet.
        """
        if self._placement is not None:
            return list(self._placement.servers_for(register))
        return self.server_ids

    def _resolve_client(self, ids: List[ProcessId], which: Union[int, ProcessId]) -> ProcessId:
        pid = ids[which] if isinstance(which, int) else which
        if pid not in self.clients:
            raise ConfigurationError(f"unknown client {pid!r}")
        return pid

    # -- scheduling operations ---------------------------------------------------
    def write(self, value: Any, writer: Union[int, ProcessId] = 0,
              at: float = 0.0, register: str = DEFAULT_REGISTER) -> OpHandle:
        """Schedule ``write(value)`` by the given writer at time ``at``.

        ``register`` selects the named register in namespaced deployments
        (ignored otherwise).
        """
        pid = self._resolve_client(self.writer_ids, writer)
        handle = OpHandle(client=pid, kind="write")

        def factory():
            op = self.spec.make_write(OpContext(
                client_id=pid, servers=tuple(self._op_servers(register)),
                f=self.f, value=value, initial_value=self.initial_value,
                codec=self._codec, enforce_bounds=self._enforce_bounds,
            ))
            if self.namespaced:
                op = NamespacedOperation(register, op)
            handle.operation = op
            return op

        self.clients[pid].submit(at, factory, self._completion_callback(handle))
        self._handles.append(handle)
        return handle

    def read(self, reader: Union[int, ProcessId] = 0, at: float = 0.0,
             register: str = DEFAULT_REGISTER) -> OpHandle:
        """Schedule a read by the given reader at time ``at``.

        ``register`` selects the named register in namespaced deployments
        (ignored otherwise).
        """
        pid = self._resolve_client(self.reader_ids, reader)
        handle = OpHandle(client=pid, kind="read")

        def factory():
            op = self.spec.make_read(OpContext(
                client_id=pid, servers=tuple(self._op_servers(register)),
                f=self.f, initial_value=self.initial_value,
                reader_state=self._reader_state_for(pid, register),
                codec=self._codec, enforce_bounds=self._enforce_bounds,
                repair=self.read_repair,
            ))
            if self.namespaced:
                op = NamespacedOperation(register, op)
            handle.operation = op
            return op

        self.clients[pid].submit(at, factory, self._completion_callback(handle))
        self._handles.append(handle)
        return handle

    def _reader_state_for(self, pid: ProcessId, register: str) -> Any:
        """Per-reader state; per (reader, register) when namespaced."""
        if not self.namespaced:
            return self._reader_states[pid]
        key = (pid, register)
        if key not in self._namespaced_reader_states:
            self._namespaced_reader_states[key] = self._new_reader_state()
        return self._namespaced_reader_states[key]

    @staticmethod
    def _completion_callback(handle: OpHandle):
        def on_complete(operation, record):
            handle.operation = operation
            handle.record = record
        return on_complete

    # -- execution and measurement ----------------------------------------------
    def run(self, **kwargs) -> Trace:
        """Run the simulation to quiescence; returns the execution trace."""
        self.sim.run(**kwargs)
        return self.sim.trace

    def crash_server(self, which: Union[int, ProcessId], at: float) -> None:
        """Schedule a server crash at simulated time ``at``."""
        pid = server_id(which) if isinstance(which, int) else which
        self.sim.schedule_at(at, lambda: self.sim.crash(pid), label=f"crash {pid}")

    def crash_client(self, pid: ProcessId, at: float) -> None:
        """Schedule a client crash at simulated time ``at``."""
        self.sim.schedule_at(at, lambda: self.sim.crash(pid), label=f"crash {pid}")

    @property
    def trace(self) -> Trace:
        """The execution trace recorded so far."""
        return self.sim.trace

    @property
    def handles(self) -> List[OpHandle]:
        """Handles of every scheduled operation, in scheduling order."""
        return list(self._handles)

    def storage_bytes(self) -> Dict[ProcessId, int]:
        """Per-server bytes of register data currently stored (E4)."""
        return {
            pid: protocol.storage_bytes()
            for pid, protocol in self.server_protocols.items()
            if hasattr(protocol, "storage_bytes")
        }

    def network_stats(self):
        """The network's byte/message counters (E4)."""
        return self.sim.network.stats


def make_system(algorithm: str = "bsr", **kwargs) -> RegisterSystem:
    """Convenience constructor mirroring :class:`RegisterSystem`."""
    return RegisterSystem(algorithm, **kwargs)
