"""BCSR: the MDS-coded Byzantine-tolerant safe register (Section IV).

Faithful implementation of Figures 4-6 on top of the ``[n, k]``
Reed-Solomon code with ``k = n - 5f`` (Section IV-A, error budget
``e = 2f``):

* **Server** (Fig 6): identical to BSR except that it stores its own coded
  element ``c_i`` instead of the full value.
* **Write** (Fig 4): same two phases as BSR, but ``put-data`` sends server
  ``i`` only its element ``c_i = Phi_i(v)``.
* **Read** (Fig 5): one round.  The reader collects ``n - f`` coded
  elements and attempts to decode; stale or corrupted elements (at most
  ``2f`` of them, by Lemma 4's counting) are fixed by the Berlekamp-Welch
  decoder.  If decoding is impossible the read returns the initial value
  ``v0`` -- permitted by safety only when the read is concurrent with a
  write, which Lemma 4 shows is the only case where it can happen.

Resilience: ``n >= 5f + 1`` (Lemma 4 and Theorem 6).  Values are ``bytes``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.messages import (
    DataReply,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import bcsr_dimension, kth_highest, validate_bcsr_config
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.erasure.striping import CodedElement, StripedCodec
from repro.errors import DecodingError
from repro.types import Envelope, ProcessId


def make_codec(n: int, f: int) -> StripedCodec:
    """The ``[n, n - 5f]`` striped Reed-Solomon codec BCSR uses."""
    return StripedCodec(n, bcsr_dimension(n, f))


class BCSRServer:
    """State machine for one BCSR server (Fig 6).

    ``index`` is the server's zero-based codeword position; the initial
    history entry holds the server's coded element of the initial value.
    """

    def __init__(self, server_id: ProcessId, index: int, codec: StripedCodec,
                 initial_value: bytes = b"",
                 max_history: Optional[int] = None) -> None:
        if not 0 <= index < codec.n:
            raise ValueError(f"server index {index} outside codeword [0, {codec.n})")
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be at least 1")
        self.server_id = server_id
        self.index = index
        self.codec = codec
        self.max_history = max_history
        initial_element = codec.encode(initial_value)[index]
        self.history: List[TaggedValue] = [TaggedValue(TAG_ZERO, initial_element)]

    @property
    def latest(self) -> TaggedValue:
        """The ``(tag, coded element)`` pair with the highest tag."""
        return self.history[-1]

    @property
    def max_tag(self) -> Tag:
        """The highest tag in ``L``."""
        return self.history[-1].tag

    def storage_bytes(self) -> int:
        """Bytes of coded data currently stored (for experiment E4)."""
        element = self.latest.value
        return len(element.data) if isinstance(element, CodedElement) else 0

    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Dispatch one incoming message; returns outgoing envelopes."""
        if isinstance(message, QueryTag):
            return [(sender, TagReply(op_id=message.op_id, tag=self.max_tag))]
        if isinstance(message, PutData):
            if message.tag > self.max_tag:
                self.history.append(TaggedValue(message.tag, message.payload))
                if (self.max_history is not None
                        and len(self.history) > self.max_history):
                    del self.history[: len(self.history) - self.max_history]
            return [(sender, PutAck(op_id=message.op_id, tag=message.tag))]
        if isinstance(message, QueryData):
            latest = self.latest
            return [(sender, DataReply(op_id=message.op_id, tag=latest.tag,
                                       payload=latest.value))]
        return []


class BCSRWriteOperation(ClientOperation):
    """A two-phase BCSR write (Fig 4): per-server coded elements."""

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 value: bytes, codec: Optional[StripedCodec] = None) -> None:
        super().__init__(client_id, servers, f)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("BCSR values must be bytes")
        self.value = bytes(value)
        if codec is None:
            # Only validate when we derive the code ourselves; an explicit
            # codec means the deployment chose its own [n, k] (used by the
            # Theorem 6 below-the-bound experiments).
            validate_bcsr_config(self.n, f)
            codec = make_codec(self.n, f)
        self.codec = codec
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-tag" and isinstance(message, TagReply):
            return self._on_tag_reply(sender, message)
        if self._phase == "put-data" and isinstance(message, PutAck):
            return self._on_ack(sender, message)
        return []

    def _on_tag_reply(self, sender: ProcessId, message: TagReply) -> List[Envelope]:
        if not isinstance(message.tag, Tag):
            return []
        self._tag_replies.add(sender, message)
        if len(self._tag_replies) < self.quorum:
            return []
        tags = [reply.tag for reply in self._tag_replies.values()]
        self._tag = kth_highest(tags, self.f + 1).next_for(self.client_id)
        self._phase = "put-data"
        self.rounds = 2
        elements = self.codec.encode(self.value)
        # Fig 4 line 7: server i receives only its own element c_i.
        return [
            (server, PutData(op_id=self.op_id, tag=self._tag, payload=elements[i]))
            for i, server in enumerate(self.servers)
        ]

    def _on_ack(self, sender: ProcessId, message: PutAck) -> List[Envelope]:
        if message.tag != self._tag:
            return []
        self._acks.add(sender, message)
        if len(self._acks) >= self.quorum:
            self._phase = "done"
            self._complete(self._tag)
        return []


class WriterSequence:
    """A single writer's persistent tag counter (for fast SWMR writes).

    The two-phase write queries servers for the highest tag only to order
    itself against *other* writers.  A strict single writer already knows
    every tag it ever issued, so it can keep the counter locally and skip
    ``get-tag`` entirely.  After a crash the writer must re-learn its
    counter (one ordinary two-phase write, or a get-tag round) before
    resuming fast writes -- :meth:`observe` folds such knowledge in.
    """

    def __init__(self, writer_id: ProcessId, start: int = 0) -> None:
        self.writer_id = writer_id
        self._num = start

    def next_tag(self) -> Tag:
        """Mint the next tag in this writer's sequence."""
        self._num += 1
        return Tag(self._num, self.writer_id)

    def observe(self, tag: Tag) -> None:
        """Fold in a tag learned elsewhere (e.g. recovery via get-tag)."""
        if tag.num > self._num:
            self._num = tag.num

    @property
    def current(self) -> int:
        """The number of the last tag issued."""
        return self._num


class BCSRFastWriteOperation(ClientOperation):
    """A one-round SWMR write: ``put-data`` only (extension, not in paper).

    Valid only under the strict single-writer regime BCSR is stated for:
    with no other writer, the locally minted tag is guaranteed maximal, so
    the ``get-tag`` phase the paper keeps (Fig 4) buys nothing.  This makes
    the register fully fast for its single writer -- one round for writes
    *and* reads -- without touching safety (tags remain monotone and
    unique).  Ablated against the two-phase write in benchmark E15.
    """

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 value: bytes, sequence: WriterSequence,
                 codec: Optional[StripedCodec] = None) -> None:
        super().__init__(client_id, servers, f)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("BCSR values must be bytes")
        if sequence.writer_id != client_id:
            raise ValueError("a writer may only use its own sequence")
        self.value = bytes(value)
        if codec is None:
            validate_bcsr_config(self.n, f)
            codec = make_codec(self.n, f)
        self.codec = codec
        self.sequence = sequence
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self.rounds = 1
        self._tag = self.sequence.next_tag()
        elements = self.codec.encode(self.value)
        return [
            (server, PutData(op_id=self.op_id, tag=self._tag, payload=elements[i]))
            for i, server in enumerate(self.servers)
        ]

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message) or not isinstance(message, PutAck):
            return []
        if message.tag != self._tag:
            return []
        self._acks.add(sender, message)
        if len(self._acks) >= self.quorum:
            self._complete(self._tag)
        return []


class BCSRReadOperation(ClientOperation):
    """A one-shot BCSR read (Fig 5): collect ``n - f`` elements, decode."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId], f: int,
                 codec: Optional[StripedCodec] = None,
                 initial_value: bytes = b"") -> None:
        super().__init__(client_id, servers, f)
        if codec is None:
            validate_bcsr_config(self.n, f)
            codec = make_codec(self.n, f)
        self.codec = codec
        self.initial_value = initial_value
        self._replies = ReplyCollector(self.servers)
        self._server_index: Dict[ProcessId, int] = {
            server: i for i, server in enumerate(self.servers)
        }

    def start(self) -> List[Envelope]:
        self.rounds = 1
        return self.broadcast(QueryData(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message) or not isinstance(message, DataReply):
            return []
        self._replies.add(sender, message)
        if len(self._replies) >= self.quorum:
            self._finish()
        return []

    def _finish(self) -> None:
        elements = []
        for server, reply in self._replies.replies.items():
            payload = reply.payload
            # A coded element's position is bound to the authenticated
            # sender, so a Byzantine server can corrupt its *data* but not
            # impersonate another codeword position.
            if isinstance(payload, CodedElement):
                elements.append(CodedElement(self._server_index[server], payload.data))
        try:
            value = self.codec.decode(elements, max_errors=2 * self.f)
        except (DecodingError, ValueError):
            # Fig 5 line 4: "if possible; otherwise return v0".
            value = self.initial_value
        self._tag = None
        self._complete(value)
