"""Quorum arithmetic: resilience thresholds and tag selection.

Centralises every ``n``/``f`` inequality from the paper so the rest of the
code never hard-codes a threshold:

* BSR (replication) needs ``n >= 4f + 1`` (Theorems 2 and 5).
* BCSR (MDS-coded) needs ``n >= 5f + 1`` (Lemma 4 and Theorem 6) and uses a
  ``[n, k]`` code with ``k = n - 5f`` (Section IV-A, with ``e = 2f``).
* RB-based prior work needs ``n >= 3f + 1`` (Section I-B; Bracha broadcast).
* Every operation waits for at most ``n - f`` replies (Lemma 6).
* Read witnesses: at least ``f + 1`` (Lemma 5).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import QuorumError

T = TypeVar("T")


def bsr_min_servers(f: int) -> int:
    """Minimum servers for the replication-based register: ``4f + 1``."""
    _check_f(f)
    return 4 * f + 1


def bcsr_min_servers(f: int) -> int:
    """Minimum servers for the MDS-coded register: ``5f + 1``."""
    _check_f(f)
    return 5 * f + 1


def rb_min_servers(f: int) -> int:
    """Minimum servers for the reliable-broadcast baseline: ``3f + 1``."""
    _check_f(f)
    return 3 * f + 1


def abd_min_servers(f: int) -> int:
    """Minimum servers for crash-only ABD: ``2f + 1``."""
    _check_f(f)
    return 2 * f + 1


def rb2_min_servers(f: int) -> int:
    """Minimum servers for the Imbs-Raynal 2-step broadcast register.

    The 2-step broadcast trades a whole communication phase for a
    stronger resilience bound: ``n >= 5f + 1`` [Imbs-Raynal 2015].
    """
    _check_f(f)
    return 5 * f + 1


def mpr_min_servers(f: int) -> int:
    """Minimum servers for the MPR signature-free atomic register:
    ``3f + 1`` [Mostefaoui-Petrolia-Raynal 2016]."""
    _check_f(f)
    return 3 * f + 1


def _check_f(f: int) -> None:
    if f < 0:
        raise QuorumError(f"f must be non-negative, got {f}")


def validate_bsr_config(n: int, f: int) -> None:
    """Raise :class:`QuorumError` unless ``n >= 4f + 1``."""
    if n < bsr_min_servers(f):
        raise QuorumError(
            f"BSR requires n >= 4f + 1 = {bsr_min_servers(f)} servers "
            f"(Theorem 5), got n={n} with f={f}"
        )


def validate_bcsr_config(n: int, f: int) -> None:
    """Raise :class:`QuorumError` unless ``n >= 5f + 1``."""
    if n < bcsr_min_servers(f):
        raise QuorumError(
            f"BCSR requires n >= 5f + 1 = {bcsr_min_servers(f)} servers "
            f"(Theorem 6), got n={n} with f={f}"
        )


def validate_rb_config(n: int, f: int) -> None:
    """Raise :class:`QuorumError` unless ``n >= 3f + 1``."""
    if n < rb_min_servers(f):
        raise QuorumError(
            f"the RB-based register requires n >= 3f + 1 = {rb_min_servers(f)} "
            f"servers, got n={n} with f={f}"
        )


def validate_rb2_config(n: int, f: int) -> None:
    """Raise :class:`QuorumError` unless ``n >= 5f + 1``."""
    if n < rb2_min_servers(f):
        raise QuorumError(
            f"the 2-step-broadcast register requires n >= 5f + 1 = "
            f"{rb2_min_servers(f)} servers, got n={n} with f={f}"
        )


def validate_mpr_config(n: int, f: int) -> None:
    """Raise :class:`QuorumError` unless ``n >= 3f + 1``."""
    if n < mpr_min_servers(f):
        raise QuorumError(
            f"the MPR register requires n >= 3f + 1 = {mpr_min_servers(f)} "
            f"servers, got n={n} with f={f}"
        )


def bcsr_dimension(n: int, f: int) -> int:
    """The code dimension ``k = n - 5f`` of BCSR's ``[n, k]`` MDS code.

    Derived from ``k = n - f - 2e`` with error budget ``e = 2f``
    (Section IV-A).
    """
    validate_bcsr_config(n, f)
    return n - 5 * f


def reply_quorum(n: int, f: int) -> int:
    """How many replies an operation waits for: ``n - f`` (Lemma 6)."""
    if f >= n:
        raise QuorumError(f"f={f} must be smaller than n={n}")
    return n - f


def witness_threshold(f: int) -> int:
    """Witnesses needed before a read may return a value: ``f + 1``
    (Lemma 5)."""
    _check_f(f)
    return f + 1


def kth_highest(values: Sequence[T], k: int) -> T:
    """The ``k``-th highest element of ``values`` (1-based).

    ``kth_highest(tags, f + 1)`` implements line 4 of Fig. 1: picking the
    ``(f+1)``-th highest tag discards up to ``f`` Byzantine-inflated tags
    while still observing every tag held by ``f + 1`` or more responders.
    """
    if not 1 <= k <= len(values):
        raise ValueError(f"k={k} out of range for {len(values)} values")
    return sorted(values, reverse=True)[k - 1]
