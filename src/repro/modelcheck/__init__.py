"""Bounded exhaustive model checking of register executions.

The scripted scenarios in :mod:`repro.byzantine.scenarios` replay the *one*
adversarial schedule each proof describes.  This package goes further: for
small configurations it explores **every** message-delivery order (with
state-hash pruning), so

* at the resilience bound it *verifies* that no schedule violates safety
  in the explored configuration, and
* below the bound it *discovers* the violating schedules of Theorems 5/6
  automatically, without anyone scripting them.

The checker is algorithm-agnostic: it drives the same server/operation
state machines as the simulator, just under a controlled scheduler.
"""

from repro.modelcheck.world import OpSpec, World
from repro.modelcheck.checker import ExplorationReport, ModelChecker

__all__ = ["World", "OpSpec", "ModelChecker", "ExplorationReport"]
