"""The exploration engine: BFS/DFS over delivery schedules with pruning.

Two modes:

* :meth:`ModelChecker.verify` -- exhaustive (state-hash-pruned) search of
  every reachable terminal state; returns a report with all violations.
* :meth:`ModelChecker.find_violation` -- depth-first search that stops at
  the first violating terminal state, returning the schedule that exposes
  it (the machine-found analogue of the paper's hand-crafted proofs).

The ``predicate`` receives the list of completed operation results (in
scenario order) and returns ``None`` for a correct outcome or a description
string for a violation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.modelcheck.world import World


@dataclass
class ExplorationReport:
    """What an exploration saw."""

    states_explored: int = 0
    terminal_states: int = 0
    stuck_states: int = 0
    violations: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    truncated: bool = False

    @property
    def ok(self) -> bool:
        """No violation found (and, for verify(), none exists if not truncated)."""
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        extra = " (TRUNCATED)" if self.truncated else ""
        return (f"explored {self.states_explored} states, "
                f"{self.terminal_states} terminal: {status}{extra}")


class ModelChecker:
    """Explore all delivery schedules of a :class:`World` factory.

    ``factory`` must return a *fresh* world per call (exploration mutates
    clones).  ``max_states`` bounds the visited-state set; exceeding it in
    :meth:`verify` marks the report ``truncated`` (or raises with
    ``strict=True``) because exhaustiveness is then lost.
    """

    def __init__(self, factory: Callable[[], World],
                 predicate: Callable[[List], Optional[str]],
                 max_states: int = 200_000) -> None:
        self.factory = factory
        self.predicate = predicate
        self.max_states = max_states

    # -- exhaustive verification ---------------------------------------------
    def verify(self, strict: bool = False) -> ExplorationReport:
        """Breadth-first exploration of every reachable state."""
        report = ExplorationReport()
        root = self.factory()
        visited = {root.state_key()}
        frontier = deque([(root, ())])
        seen_violations = set()
        while frontier:
            world, schedule = frontier.popleft()
            report.states_explored += 1
            if world.done:
                report.terminal_states += 1
                verdict = self.predicate(world.results)
                if verdict is not None and verdict not in seen_violations:
                    seen_violations.add(verdict)
                    report.violations.append((verdict, schedule))
                continue
            if world.stuck:
                report.stuck_states += 1
                continue
            for choice in world.choices():
                child = world.clone()
                child.deliver(choice)
                key = child.state_key()
                if key in visited:
                    continue
                if len(visited) >= self.max_states:
                    report.truncated = True
                    if strict:
                        raise SimulationError(
                            f"state space exceeds max_states={self.max_states}; "
                            "shrink the scenario or raise the bound"
                        )
                    continue
                visited.add(key)
                step = world.pending[choice].key()
                frontier.append((child, schedule + (f"{step[0]}->{step[1]}",)))
        return report

    # -- directed counterexample search -----------------------------------------
    def find_violation(self) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Depth-first search returning the first violation (or ``None``).

        Uses the same pruning as :meth:`verify` but stops immediately when
        a violating terminal state appears, which makes below-the-bound
        counterexample discovery fast even for larger scenarios.
        """
        root = self.factory()
        visited = {root.state_key()}
        stack = [(root, ())]
        while stack:
            world, schedule = stack.pop()
            if world.done:
                verdict = self.predicate(world.results)
                if verdict is not None:
                    return (verdict, schedule)
                continue
            if world.stuck:
                continue
            for choice in world.choices():
                child = world.clone()
                child.deliver(choice)
                key = child.state_key()
                if key in visited or len(visited) >= self.max_states:
                    continue
                visited.add(key)
                step = world.pending[choice].key()
                stack.append((child, schedule + (f"{step[0]}->{step[1]}",)))
        return None
