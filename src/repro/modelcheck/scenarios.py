"""Ready-made model-checking scenarios mirroring the paper's proofs."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.byzantine.behaviors import Behavior, HistoryReplayBehavior
from repro.core.bcsr import BCSRReadOperation, BCSRServer, BCSRWriteOperation
from repro.core.bsr import (
    BSRReadOperation,
    BSRReaderState,
    BSRServer,
    BSRWriteOperation,
)
from repro.core.messages import PutData
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import StripedCodec
from repro.modelcheck.world import OpSpec, World
from repro.types import reader_id, server_id, writer_id

INITIAL = b"v0"
FIRST, SECOND = b"v1", b"v2"


def _read_predicate(results: List) -> Optional[str]:
    """The safety clause the Theorem 5/6 scenarios exercise.

    Operations are sequential, so the final read is concurrent with no
    write and must return the *second* write's value.
    """
    read_value = results[-1]
    if read_value != SECOND:
        return (f"completed read returned {read_value!r} although "
                f"{SECOND!r} was the latest completed write")
    return None


def bsr_two_writes_one_read(n: int, f: int = 1,
                            liar_count: Optional[int] = None):
    """Theorem 5's shape: write v1; write v2; read -- as a checkable world.

    ``liar_count`` servers (default ``f``) replay their previous state on
    reads.  Returns ``(world_factory, predicate)`` for a
    :class:`~repro.modelcheck.checker.ModelChecker`.
    """
    liars = f if liar_count is None else liar_count
    servers_ids = [server_id(i) for i in range(n)]

    def factory() -> World:
        servers = {pid: BSRServer(pid, initial_value=INITIAL)
                   for pid in servers_ids}
        behaviors: Dict[str, Behavior] = {
            server_id(i): HistoryReplayBehavior(offset=1) for i in range(liars)
        }
        ops = [
            OpSpec(writer_id(0), lambda: BSRWriteOperation(
                writer_id(0), servers_ids, f, FIRST, enforce_bounds=False)),
            OpSpec(writer_id(1), lambda: BSRWriteOperation(
                writer_id(1), servers_ids, f, SECOND, enforce_bounds=False)),
            # The reader state is created at instantiation time so cloned
            # worlds never share mutable state through the spec closure.
            OpSpec(reader_id(0), lambda: BSRReadOperation(
                reader_id(0), servers_ids, f,
                reader_state=BSRReaderState(INITIAL),
                enforce_bounds=False)),
        ]
        return World(servers, ops, behaviors=behaviors)

    return factory, _read_predicate


def bsr_preseeded_write_read(n: int, f: int = 1,
                             liar_count: Optional[int] = None):
    """Theorem 5's shape with the first write pre-seeded.

    Exploring the first write adds nothing adversarial (it completes before
    anything else starts), but multiplies the state space.  This scenario
    starts from the state *after* ``W1(v1)`` completed by reaching servers
    ``s0 .. s(n-f-1)`` -- a reachable state by construction -- and then
    exhaustively explores every schedule of ``W2(v2)`` and the read.

    This is the scenario the E11 benchmark verifies exhaustively at
    ``n = 4f + 1`` and breaks automatically at ``n = 4f``.
    """
    liars = f if liar_count is None else liar_count
    servers_ids = [server_id(i) for i in range(n)]
    first_tag = Tag(1, writer_id(0))

    def factory() -> World:
        servers = {}
        for i, pid in enumerate(servers_ids):
            server = BSRServer(pid, initial_value=INITIAL)
            if i < n - f:  # W1's quorum: the first n - f servers
                server.history.append(TaggedValue(first_tag, FIRST))
            servers[pid] = server
        behaviors: Dict[str, Behavior] = {
            server_id(i): HistoryReplayBehavior(offset=1) for i in range(liars)
        }
        ops = [
            OpSpec(writer_id(1), lambda: BSRWriteOperation(
                writer_id(1), servers_ids, f, SECOND, enforce_bounds=False)),
            OpSpec(reader_id(0), lambda: BSRReadOperation(
                reader_id(0), servers_ids, f,
                reader_state=BSRReaderState(INITIAL),
                enforce_bounds=False)),
        ]
        return World(servers, ops, behaviors=behaviors)

    return factory, _read_predicate


def bsr_read_stage(n: int, f: int, w1_quorum: Tuple[int, ...],
                   w2_quorum: Tuple[int, ...],
                   liar_count: Optional[int] = None):
    """The read stage of Theorem 5, exhaustively checkable.

    Both writes are pre-seeded: ``W1(v1)`` reached exactly ``w1_quorum``
    (server indices) and ``W2(v2)`` reached exactly ``w2_quorum``; the
    put-data copies for the servers each write missed are *still in
    flight* as initial pending messages (channels are reliable, so they
    must eventually arrive -- maybe during the read).  The explored
    nondeterminism is then the full read stage: every interleaving of the
    leftover puts with the read's queries and replies.

    Combined with :func:`all_quorum_pairs`, this yields a genuinely
    exhaustive check of the read's safety at a given ``n``: every write
    quorum choice x every read schedule.
    """
    liars = f if liar_count is None else liar_count
    if len(w1_quorum) < n - f or len(w2_quorum) < n - f:
        raise ValueError("write quorums must contain at least n - f servers")
    servers_ids = [server_id(i) for i in range(n)]
    tag1, tag2 = Tag(1, writer_id(0)), Tag(2, writer_id(1))

    def factory() -> World:
        servers = {}
        leftovers = []
        for i, pid in enumerate(servers_ids):
            server = BSRServer(pid, initial_value=INITIAL)
            if i in w1_quorum:
                server.history.append(TaggedValue(tag1, FIRST))
            else:
                leftovers.append(
                    (writer_id(0), pid, PutData(op_id=10_001, tag=tag1,
                                                payload=FIRST)))
            if i in w2_quorum:
                server.history.append(TaggedValue(tag2, SECOND))
            else:
                leftovers.append(
                    (writer_id(1), pid, PutData(op_id=10_002, tag=tag2,
                                                payload=SECOND)))
            servers[pid] = server
        behaviors: Dict[str, Behavior] = {
            server_id(i): HistoryReplayBehavior(offset=1) for i in range(liars)
        }
        ops = [
            OpSpec(reader_id(0), lambda: BSRReadOperation(
                reader_id(0), servers_ids, f,
                reader_state=BSRReaderState(INITIAL),
                enforce_bounds=False)),
        ]
        return World(servers, ops, behaviors=behaviors,
                     initial_pending=leftovers)

    return factory, _read_predicate


def bcsr_read_stage(n: int, f: int, w1_quorum: Tuple[int, ...],
                    w2_quorum: Tuple[int, ...], k: Optional[int] = None,
                    liar_count: Optional[int] = None):
    """The read stage of Theorem 6: BCSR's coded analogue of
    :func:`bsr_read_stage`.

    Servers are pre-seeded with their coded elements of ``v1`` (for
    ``w1_quorum``) and ``v2`` (for ``w2_quorum``); missed PUT-DATA copies
    are in flight; ``liar_count`` servers replay their previous state on
    reads.  The predicate demands the read decode ``v2``.

    ``k`` defaults to the paper's ``n - 5f``, clamped to 1 below the bound
    (the defender's best choice there).
    """
    liars = f if liar_count is None else liar_count
    if len(w1_quorum) < n - f or len(w2_quorum) < n - f:
        raise ValueError("write quorums must contain at least n - f servers")
    if k is None:
        k = n - 5 * f if n > 5 * f else 1
    servers_ids = [server_id(i) for i in range(n)]
    tag1, tag2 = Tag(1, writer_id(0)), Tag(2, writer_id(1))
    codec = StripedCodec(n, k)
    elements1 = codec.encode(FIRST)
    elements2 = codec.encode(SECOND)

    def factory() -> World:
        servers = {}
        leftovers = []
        for i, pid in enumerate(servers_ids):
            server = BCSRServer(pid, i, codec, initial_value=INITIAL)
            if i in w1_quorum:
                server.history.append(TaggedValue(tag1, elements1[i]))
            else:
                leftovers.append(
                    (writer_id(0), pid, PutData(op_id=10_001, tag=tag1,
                                                payload=elements1[i])))
            if i in w2_quorum:
                server.history.append(TaggedValue(tag2, elements2[i]))
            else:
                leftovers.append(
                    (writer_id(1), pid, PutData(op_id=10_002, tag=tag2,
                                                payload=elements2[i])))
            servers[pid] = server
        behaviors: Dict[str, Behavior] = {
            server_id(i): HistoryReplayBehavior(offset=1) for i in range(liars)
        }
        ops = [
            OpSpec(reader_id(0), lambda: BCSRReadOperation(
                reader_id(0), servers_ids, f, codec=codec,
                initial_value=INITIAL)),
        ]
        return World(servers, ops, behaviors=behaviors,
                     initial_pending=leftovers)

    return factory, _read_predicate


def all_quorum_pairs(n: int, f: int):
    """Every (W1 quorum, W2 quorum) pair of exactly ``n - f`` servers."""
    from itertools import combinations
    quorums = list(combinations(range(n), n - f))
    for w1 in quorums:
        for w2 in quorums:
            yield w1, w2


def bcsr_two_writes_one_read(n: int, f: int = 1, k: Optional[int] = None,
                             liar_count: Optional[int] = None):
    """Theorem 6's shape for the coded register.

    ``k`` defaults to the paper's ``n - 5f`` (clamped to 1 below the
    bound, the most favourable choice for the defender).
    """
    liars = f if liar_count is None else liar_count
    if k is None:
        k = n - 5 * f if n > 5 * f else 1
    servers_ids = [server_id(i) for i in range(n)]
    codec = StripedCodec(n, k)

    def factory() -> World:
        servers = {
            server_id(i): BCSRServer(server_id(i), i, codec,
                                     initial_value=INITIAL)
            for i in range(n)
        }
        behaviors: Dict[str, Behavior] = {
            server_id(i): HistoryReplayBehavior(offset=1) for i in range(liars)
        }
        ops = [
            OpSpec(writer_id(0), lambda: BCSRWriteOperation(
                writer_id(0), servers_ids, f, FIRST, codec=codec)),
            OpSpec(writer_id(1), lambda: BCSRWriteOperation(
                writer_id(1), servers_ids, f, SECOND, codec=codec)),
            OpSpec(reader_id(0), lambda: BCSRReadOperation(
                reader_id(0), servers_ids, f, codec=codec,
                initial_value=INITIAL)),
        ]
        return World(servers, ops, behaviors=behaviors)

    return factory, _read_predicate
