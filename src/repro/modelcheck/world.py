"""A controlled-scheduler execution: the model checker's unit of state.

A :class:`World` holds server state machines, a chain of client operations
(each starting when its predecessor completes -- the shape of all the
paper's counterexample executions), and the multiset of in-flight messages.
The model checker advances a world one *delivery choice* at a time and
snapshots it by value, so exploration can branch.

Unlike the simulator there is no clock: asynchrony is modelled purely by
delivery order, which is exactly the paper's adversary power (unbounded,
arbitrary delays) in a finite form.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.operation import ReplyCollector
from repro.core.tags import Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.types import Envelope, ProcessId


@dataclass
class OpSpec:
    """One client operation in the (sequential) scenario chain."""

    client: ProcessId
    factory: Callable[[], Any]  # zero-arg, returns a fresh ClientOperation
    label: str = ""


class _Pending:
    """One in-flight message; immutable, with a cached fingerprint."""

    __slots__ = ("src", "dst", "message", "_key")

    def __init__(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        self.src = src
        self.dst = dst
        self.message = message
        self._key = (src, dst, repr(message))

    def key(self) -> Tuple[str, str, str]:
        return self._key


class World:
    """One reachable global state of a controlled execution."""

    def __init__(self, servers: Dict[ProcessId, Any], ops: Sequence[OpSpec],
                 behaviors: Optional[Dict[ProcessId, Any]] = None,
                 initial_pending: Sequence[Tuple[ProcessId, ProcessId, Any]] = ()) -> None:
        self.servers = servers
        self.behaviors = behaviors or {}
        self.op_specs = list(ops)
        self.ops: List[Any] = []          # instantiated operations, in order
        self.results: List[Any] = []      # completed results, in order
        self.pending: List[_Pending] = []
        for src, dst, message in initial_pending:
            self.pending.append(_Pending(src=src, dst=dst, message=message))
        self._start_next_op()

    # -- lifecycle ----------------------------------------------------------
    def clone(self) -> "World":
        """Copy the world by value.

        Server histories hold immutable pairs, pending entries are
        immutable, and behaviours used in model checking are stateless, so
        a shallow-plus-history copy suffices for servers; operations are
        small and get a true deepcopy.
        """
        twin = World.__new__(World)
        twin.behaviors = self.behaviors            # stateless, shared
        twin.op_specs = self.op_specs              # immutable specs, shared
        twin.servers = {}
        for pid, server in self.servers.items():
            copied = copy.copy(server)
            copied.history = list(server.history)
            twin.servers[pid] = copied
        memo = {}
        # Reader state may be shared between a spec closure and an op;
        # deepcopy with a shared memo keeps that aliasing intact.
        twin.ops = copy.deepcopy(self.ops, memo)
        twin.results = list(self.results)
        twin.pending = list(self.pending)          # entries are immutable
        return twin

    def _start_next_op(self) -> None:
        while len(self.ops) < len(self.op_specs):
            spec = self.op_specs[len(self.ops)]
            operation = spec.factory()
            # Deterministic per-position op ids: freshly minted global ids
            # would make equivalent states from different branches look
            # distinct and defeat visited-state pruning.
            operation.op_id = 50_000 + len(self.ops)
            self.ops.append(operation)
            self._enqueue(spec.client, operation.start())
            if not operation.done:
                break
            self.results.append(operation.result)

    def _enqueue(self, src: ProcessId, envelopes: Sequence[Envelope]) -> None:
        for dst, message in envelopes:
            self.pending.append(_Pending(src=src, dst=dst, message=message))

    # -- scheduler interface ---------------------------------------------------
    @property
    def done(self) -> bool:
        """All scenario operations completed."""
        return len(self.results) == len(self.op_specs)

    @property
    def stuck(self) -> bool:
        """No operation can make progress any more (a liveness dead end).

        Unreachable when at most ``f`` servers misbehave -- its appearance
        in a report means the scenario exceeded the fault budget.
        """
        return not self.done and not self.pending

    def choices(self) -> List[int]:
        """Indices of deliverable messages (all of them: full asynchrony)."""
        return list(range(len(self.pending)))

    def deliver(self, index: int) -> None:
        """Deliver pending message ``index`` and run the consequences."""
        entry = self.pending.pop(index)
        if entry.dst in self.servers:
            server = self.servers[entry.dst]
            replies = server.handle(entry.src, entry.message)
            behavior = self.behaviors.get(entry.dst)
            if behavior is not None:
                replies = behavior.on_message(server, entry.src,
                                              entry.message, replies)
            self._enqueue(entry.dst, replies)
            return
        # Client delivery: route to the active operation (if any).
        active_index = len(self.results)
        if active_index >= len(self.ops):
            return  # late reply after the whole chain finished
        operation = self.ops[active_index]
        if getattr(operation, "client_id", None) != entry.dst and \
                self.op_specs[active_index].client != entry.dst:
            return  # reply for an earlier op's client; stale, drop
        followups = operation.on_reply(entry.src, entry.message)
        self._enqueue(entry.dst, followups)
        if operation.done:
            self.results.append(operation.result)
            self._start_next_op()

    # -- canonical state key -------------------------------------------------------
    def state_key(self) -> Tuple:
        """A value-based fingerprint for visited-state pruning.

        Includes server histories, every operation's observable progress,
        completed results and the pending multiset.  Two worlds with equal
        keys behave identically under any future schedule (for stateless
        Byzantine behaviours).
        """
        # Symmetry reduction: *correct* servers are interchangeable, so
        # each is keyed by (state, pending-to-it) and the collection is a
        # sorted multiset; Byzantine servers (and clients) stay keyed by id.
        pending_by_dst: Dict[ProcessId, List[Tuple]] = {}
        other_pending: List[Tuple] = []
        for entry in self.pending:
            if entry.dst in self.servers and entry.dst not in self.behaviors:
                # dst is implicit in the per-server grouping; keeping it in
                # the key would defeat the symmetric-server merge.
                src, _dst, msg = entry.key()
                pending_by_dst.setdefault(entry.dst, []).append((src, msg))
            else:
                other_pending.append(entry.key())
        correct_servers = []
        byzantine_servers = []
        for pid, server in sorted(self.servers.items()):
            fingerprint = (
                _canon(getattr(server, "history", None)),
                tuple(sorted(pending_by_dst.get(pid, ()))),
            )
            if pid in self.behaviors:
                byzantine_servers.append((pid, fingerprint))
            else:
                correct_servers.append(fingerprint)
        ops = tuple(_op_key(op) for op in self.ops)
        results = tuple(repr(result) for result in self.results)
        return (
            tuple(sorted(map(repr, correct_servers))),
            tuple(byzantine_servers),
            ops,
            results,
            tuple(sorted(other_pending)),
        )


def _canon(value: Any) -> Any:
    """Canonicalize protocol state values into hashable structures."""
    if value is None or isinstance(value, (str, int, float, bool, bytes)):
        return value
    if isinstance(value, Tag):
        return ("tag", value.num, value.writer)
    if isinstance(value, TaggedValue):
        return ("tv", _canon(value.tag), _canon(value.value))
    if isinstance(value, CodedElement):
        return ("ce", value.index, value.data)
    if isinstance(value, ReplyCollector):
        return ("rc", tuple(sorted(
            (sender, repr(reply)) for sender, reply in value.replies.items()
        )))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(item) for item in value))
    if isinstance(value, dict):
        return tuple(sorted((repr(k), _canon(v)) for k, v in value.items()))
    if hasattr(value, "local"):  # BSRReaderState
        return ("rs", _canon(value.local))
    return repr(value)


def _op_key(operation: Any) -> Tuple:
    """Fingerprint of one operation's observable state."""
    parts = [type(operation).__name__, operation.done]
    if operation.done:
        parts.append(repr(operation.result))
    inner = getattr(operation, "operation", None)
    if inner is not None:  # NamespacedOperation wrapper
        parts.append(_op_key(inner))
        return tuple(parts)
    for name, value in sorted(vars(operation).items()):
        if name in ("servers", "codec", "initial_value", "value",
                    "client_id", "op_id", "f", "n"):
            continue
        if callable(value):
            continue
        parts.append((name, _canon(value)))
    return tuple(parts)
