"""Measurement collection and report formatting for the experiments."""

from repro.metrics.collectors import (
    LatencySummary,
    OperationSummary,
    summarize_latencies,
    summarize_trace,
)
from repro.metrics.report import emit, format_markdown_table, format_table

__all__ = [
    "LatencySummary",
    "OperationSummary",
    "summarize_latencies",
    "summarize_trace",
    "emit",
    "format_table",
    "format_markdown_table",
]
