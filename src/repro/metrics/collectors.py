"""Latency/round statistics extracted from execution traces."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.trace import OpKind, Trace


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a latency sample (simulated seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """Summary of an empty sample (all zeros)."""
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                   minimum=0.0, maximum=0.0)


def percentile(sorted_sample: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample."""
    if not sorted_sample:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = max(0, math.ceil(fraction * len(sorted_sample)) - 1)
    return sorted_sample[rank]


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Summarize a latency sample."""
    if not latencies:
        return LatencySummary.empty()
    ordered = sorted(latencies)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


@dataclass
class OperationSummary:
    """Aggregate statistics for one operation kind within a trace."""

    kind: str
    latency: LatencySummary
    rounds: Dict[int, int] = field(default_factory=dict)
    incomplete: int = 0

    @property
    def mean_rounds(self) -> float:
        """Average rounds per completed operation."""
        total = sum(count for count in self.rounds.values())
        if not total:
            return 0.0
        return sum(r * c for r, c in self.rounds.items()) / total


def summarize_trace(trace: Trace) -> Dict[str, OperationSummary]:
    """Per-kind latency and round statistics for a whole execution."""
    summaries: Dict[str, OperationSummary] = {}
    for kind in (OpKind.READ, OpKind.WRITE):
        records = [op for op in trace if op.kind is kind]
        completed = [op for op in records if op.complete]
        rounds: Dict[int, int] = {}
        for op in completed:
            rounds[op.rounds] = rounds.get(op.rounds, 0) + 1
        summaries[kind.value] = OperationSummary(
            kind=kind.value,
            latency=summarize_latencies([op.latency for op in completed]),
            rounds=rounds,
            incomplete=len(records) - len(completed),
        )
    return summaries
