"""Latency/round statistics extracted from execution traces.

The order statistics themselves (:class:`LatencySummary`,
:func:`percentile`, :func:`summarize_latencies`) live in
:mod:`repro.obs.stats` -- one nearest-rank implementation shared with
the live histogram snapshots -- and are re-exported here for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.stats import (  # noqa: F401 -- re-exported compatibility names
    LatencySummary,
    percentile,
    summarize_latencies,
)
from repro.sim.trace import OpKind, Trace


@dataclass
class OperationSummary:
    """Aggregate statistics for one operation kind within a trace."""

    kind: str
    latency: LatencySummary
    rounds: Dict[int, int] = field(default_factory=dict)
    incomplete: int = 0

    @property
    def mean_rounds(self) -> float:
        """Average rounds per completed operation."""
        total = sum(count for count in self.rounds.values())
        if not total:
            return 0.0
        return sum(r * c for r, c in self.rounds.items()) / total


def summarize_trace(trace: Trace) -> Dict[str, OperationSummary]:
    """Per-kind latency and round statistics for a whole execution."""
    summaries: Dict[str, OperationSummary] = {}
    for kind in (OpKind.READ, OpKind.WRITE):
        records = [op for op in trace if op.kind is kind]
        completed = [op for op in records if op.complete]
        rounds: Dict[int, int] = {}
        for op in completed:
            rounds[op.rounds] = rounds.get(op.rounds, 0) + 1
        summaries[kind.value] = OperationSummary(
            kind=kind.value,
            latency=summarize_latencies([op.latency for op in completed]),
            rounds=rounds,
            incomplete=len(records) - len(completed),
        )
    return summaries
