"""Plain-text and markdown table rendering for experiment output.

Every benchmark prints its results through these helpers so the
"regenerates the paper's rows" requirement has a single, consistent look.
"""

from __future__ import annotations

import sys
from typing import Any, IO, List, Sequence


def emit(text: str, stream: IO[str] = None) -> None:
    """Write one block of experiment output, flushed.

    The single sanctioned stdout path for benchmark scripts (the
    no-bare-print lint covers ``benchmarks/``): tables and progress lines
    route through here so output interleaves cleanly and redirects as one
    stream.
    """
    print(text, file=stream if stream is not None else sys.stdout,
          flush=True)


def _stringify(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(c) for c in row) + " |")
    return "\n".join(lines)
