"""Scripted adversarial executions reproducing the paper's proofs.

Each function builds a :class:`~repro.core.register.RegisterSystem`, scripts
the exact message schedule and Byzantine lies of one proof, runs it, and
returns a :class:`ScenarioResult` with the consistency-checker verdicts:

* :func:`theorem3_regularity_violation` -- BSR is safe but **not** regular
  (Theorem 3: five concurrent writes scatter values across servers so the
  witness set is empty and the read falls back to ``v0``).  Running the same
  schedule with ``algorithm="bsr-history"`` or ``"bsr-2round"`` shows the
  regular variants surviving it.
* :func:`theorem5_bsr_below_bound` -- with only ``n = 4f`` servers a
  history-replaying Byzantine server makes a stale value collect ``f + 1``
  witnesses and BSR violates safety (Theorem 5).  The same adversary against
  ``n = 4f + 1`` fails.
* :func:`theorem6_bcsr_below_bound` -- with ``n = 5f`` servers the decoder
  faces more erroneous coded elements than ``N >= k + 2e`` allows and the
  coded register violates safety (Theorem 6).  The same adversary against
  ``n = 5f + 1`` fails.

These are the executable forms of benchmarks E2, E3 and E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.byzantine.behaviors import HistoryReplayBehavior
from repro.consistency.result import CheckResult
from repro.consistency.regularity import check_regularity
from repro.consistency.safety import check_safety
from repro.core.messages import DataReply, HistoryReply, PutData, TagHistoryReply
from repro.core.register import OpHandle, RegisterSystem
from repro.sim.delays import HOLD, RuleBasedDelays, ConstantDelay
from repro.sim.trace import Trace
from repro.types import reader_id, server_id, writer_id

#: Fast-path delay used by all scripted schedules.
FAST = 0.1


@dataclass
class ScenarioResult:
    """Outcome of one scripted execution."""

    description: str
    system: RegisterSystem
    trace: Trace
    read: OpHandle
    safety: CheckResult
    regularity: CheckResult

    @property
    def read_value(self) -> Any:
        """The value the scripted read returned."""
        return self.read.value if self.read.done else None


def _result(description: str, system: RegisterSystem, read: OpHandle,
            initial_value: bytes = b"v0") -> ScenarioResult:
    trace = system.trace
    return ScenarioResult(
        description=description,
        system=system,
        trace=trace,
        read=read,
        safety=check_safety(trace, initial_value=initial_value),
        regularity=check_regularity(trace, initial_value=initial_value),
    )


def theorem3_regularity_violation(algorithm: str = "bsr",
                                  seed: int = 0) -> ScenarioResult:
    """The Theorem 3 execution: n=5, f=1, five writers, one reader.

    Writer ``w0`` completes a write of ``v1`` everywhere.  Writers
    ``w1..w4`` then each start a write whose ``PUT-DATA`` reaches exactly
    one distinct server quickly while every other copy is held in the
    network.  A read then finds five different latest values -- one per
    server -- and (for plain BSR) no pair reaches ``f + 1`` witnesses, so
    it returns ``v0``: safe, but not regular.

    Pass ``algorithm="bsr-history"`` or ``"bsr-2round"`` to run the same
    schedule against the regular variants (which return a fresh value).
    """
    delays = RuleBasedDelays(fallback=ConstantDelay(FAST))
    # Writer w00{i}'s PUT-DATA is fast only toward server s00{i}; all other
    # copies are held until after the read (released at end of run).
    for i in range(1, 5):
        writer, fast_server = writer_id(i), server_id(i)

        def match(src, dst, msg, writer=writer, fast_server=fast_server):
            return (isinstance(msg, PutData) and src == writer
                    and dst != fast_server)

        delays.hold(match, label=f"hold PUT-DATA of {writer} except {fast_server}")

    system = RegisterSystem(algorithm, f=1, n=5, num_writers=5, num_readers=1,
                            seed=seed, delay_model=delays, initial_value=b"v0")
    system.write(b"v1", writer=0, at=0.0)
    for i in range(1, 5):
        system.write(f"v{i + 1}".encode(), writer=i, at=10.0)
    read = system.read(reader=0, at=20.0)
    system.run()
    return _result(
        f"Theorem 3 schedule against {algorithm} (n=5, f=1)", system, read,
    )


def _two_write_adversary_delays(n: int, f: int) -> RuleBasedDelays:
    """The shared schedule of the Theorem 5 / Theorem 6 proofs, any ``f``.

    * ``W1``'s PUT-DATA never reaches the *last* ``f`` servers in time
      (W1 still completes: the other ``n - f`` ack).
    * ``W2``'s PUT-DATA never reaches servers ``s_f .. s_{2f-1}`` in time --
      ``f`` *correct* servers are left holding the superseded ``v1``
      (W2 still completes: the other ``n - f`` ack).
    * The last ``f`` servers answer read queries slowly, so the reader
      decides from the first ``n - f`` repliers: ``f`` Byzantine liars
      replaying ``v1``, ``f`` honestly-stale servers, and the rest fresh.
    """
    delays = RuleBasedDelays(fallback=ConstantDelay(FAST))
    last_servers = {server_id(i) for i in range(n - f, n)}
    stale_servers = {server_id(i) for i in range(f, 2 * f)}
    delays.hold(
        lambda src, dst, msg: (isinstance(msg, PutData)
                               and src == writer_id(0) and dst in last_servers),
        label="W1 misses the last f servers",
    )
    delays.hold(
        lambda src, dst, msg: (isinstance(msg, PutData)
                               and src == writer_id(1) and dst in stale_servers),
        label="W2 misses f correct servers",
    )
    delays.add_rule(
        lambda src, dst, msg: (src in last_servers
                               and isinstance(msg, (DataReply, HistoryReply,
                                                    TagHistoryReply))),
        50.0, label="last f servers reply slowly to reads",
    )
    return delays


def theorem5_bsr_below_bound(n: Optional[int] = None, f: int = 1,
                             seed: int = 0) -> ScenarioResult:
    """The Theorem 5 execution: BSR with ``n = 4f`` servers breaks.

    ``W1`` writes ``v1`` reaching servers ``s0..s(n-2)`` (its messages to
    the last server are held); ``W2`` then writes ``v2`` reaching all but
    ``s1``; a read contacts ``s0, s1, ..`` where Byzantine ``s0`` replays
    the stale ``v1``.  With ``n = 4f`` the stale pair collects ``f + 1``
    witnesses and wins.  Call with ``n = 4f + 1`` to watch the identical
    adversary fail.
    """
    if n is None:
        n = 4 * f
    delays = _two_write_adversary_delays(n, f)
    system = RegisterSystem(
        "bsr", f=f, n=n, num_writers=2, num_readers=1, seed=seed,
        delay_model=delays, initial_value=b"v0", enforce_bounds=False,
        byzantine={i: HistoryReplayBehavior(offset=1) for i in range(f)},
    )
    system.write(b"v1", writer=0, at=0.0)
    system.write(b"v2", writer=1, at=10.0)
    read = system.read(reader=0, at=20.0)
    system.run()
    return _result(
        f"Theorem 5 schedule against BSR (n={n}, f={f})", system, read,
    )


def theorem6_bcsr_below_bound(n: Optional[int] = None, f: int = 1,
                              seed: int = 0) -> ScenarioResult:
    """The Theorem 6 execution: the coded register with ``n = 5f`` breaks.

    Same write/read schedule as Theorem 5 but against BCSR.  The read
    receives ``n - f`` coded elements of which ``2f`` are stale (the liar
    ``s0`` plus the servers ``W2`` missed), and with ``n = 5f`` the
    Berlekamp-Welch condition ``N >= k + 2e`` cannot hold, so the decode
    returns the wrong value or fails to ``v0``.  With ``n = 5f + 1`` the
    identical adversary is corrected away.

    At ``n = 5f`` the paper's dimension ``k = n - 5f`` is zero, so the
    smallest usable code ``k = 1`` is used; any larger ``k`` is strictly
    worse for the defender.
    """
    if n is None:
        n = 5 * f
    delays = _two_write_adversary_delays(n, f)
    k = n - 5 * f if n > 5 * f else 1
    system = RegisterSystem(
        "bcsr", f=f, n=n, num_writers=2, num_readers=1, seed=seed,
        delay_model=delays, initial_value=b"v0", enforce_bounds=False,
        bcsr_k=k,
        byzantine={i: HistoryReplayBehavior(offset=1) for i in range(f)},
    )
    system.write(b"value-one", writer=0, at=0.0)
    system.write(b"value-two", writer=1, at=10.0)
    read = system.read(reader=0, at=20.0)
    system.run()
    return _result(
        f"Theorem 6 schedule against BCSR (n={n}, f={f}, k={k})", system, read,
    )
