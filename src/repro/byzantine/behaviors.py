"""Reusable Byzantine server strategies.

Each behaviour implements::

    on_message(server, sender, message, correct_replies) -> [(dest, message)]

where ``server`` is the underlying *correct* state machine (whose state the
behaviour may consult -- a Byzantine server knows its own history), and
``correct_replies`` is what a correct server would have sent.  Returning
``correct_replies`` unchanged makes the server honest for that message.

The strategies cover the paper's list of example deviations (Section II-A):
"incorrect register values, incorrect timestamp values, no reply or multiple
replies to a certain request".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.messages import (
    DataReply,
    HistoryReply,
    PutAck,
    PutData,
    QueryData,
    QueryHistory,
    QueryTag,
    QueryTagHistory,
    QueryValue,
    TagHistoryReply,
    TagReply,
    ValueReply,
)
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.erasure.striping import CodedElement
from repro.sim.rng import SimRng
from repro.types import Envelope, ProcessId


class Behavior:
    """Base behaviour: honest (returns the correct replies)."""

    name = "honest"

    def on_message(self, server: Any, sender: ProcessId, message: Any,
                   correct_replies: List[Envelope]) -> List[Envelope]:
        """Decide what to actually send in response to ``message``."""
        return correct_replies


class SilentBehavior(Behavior):
    """Never replies (but its state still updates, so it can turn chatty).

    From the clients' perspective this is indistinguishable from a crashed
    or very slow server -- the weakest Byzantine strategy, and the one the
    liveness bound (Lemma 6) is calibrated against.
    """

    name = "silent"

    def on_message(self, server, sender, message, correct_replies):
        return []


class StaleBehavior(Behavior):
    """Answers every query with the *initial* state of the register.

    Models a server that pretends no write ever happened: stale tag replies
    slow writers down and stale data replies try to drag readers back to
    ``v0``.  Acks are suppressed for puts so the server also "forgets"
    writes.
    """

    name = "stale"

    def on_message(self, server, sender, message, correct_replies):
        oldest = server.history[0]
        if isinstance(message, QueryTag):
            return [(sender, TagReply(op_id=message.op_id, tag=oldest.tag))]
        if isinstance(message, QueryData):
            return [(sender, DataReply(op_id=message.op_id, tag=oldest.tag,
                                       payload=oldest.value))]
        if isinstance(message, QueryHistory):
            return [(sender, HistoryReply(op_id=message.op_id, history=(oldest,)))]
        if isinstance(message, QueryTagHistory):
            return [(sender, TagHistoryReply(op_id=message.op_id, tags=(oldest.tag,)))]
        if isinstance(message, PutData):
            return []  # swallow the ack
        return correct_replies


class ForgeTagBehavior(Behavior):
    """Inflates timestamps: the "incorrect timestamp values" deviation.

    Query replies advertise a tag ``boost`` higher than anything real, with
    a fabricated value.  A reader must see ``f + 1`` witnesses to believe a
    pair (Lemma 5) and a writer takes the ``(f+1)``-th highest tag (Fig 1
    line 4), so ``f`` forgers alone can mislead neither -- which is exactly
    what the E8 ablation measures.
    """

    name = "forge_tag"

    def __init__(self, boost: int = 1_000_000, fake_value: Any = b"\xde\xad") -> None:
        self.boost = boost
        self.fake_value = fake_value

    def _forged_tag(self, server) -> Tag:
        return Tag(server.max_tag.num + self.boost, server.server_id)

    def on_message(self, server, sender, message, correct_replies):
        forged = self._forged_tag(server)
        if isinstance(message, QueryTag):
            return [(sender, TagReply(op_id=message.op_id, tag=forged))]
        if isinstance(message, QueryData):
            return [(sender, DataReply(op_id=message.op_id, tag=forged,
                                       payload=self.fake_value))]
        if isinstance(message, QueryHistory):
            pair = TaggedValue(forged, self.fake_value)
            return [(sender, HistoryReply(op_id=message.op_id,
                                          history=tuple(server.history) + (pair,)))]
        if isinstance(message, QueryTagHistory):
            tags = tuple(p.tag for p in server.history) + (forged,)
            return [(sender, TagHistoryReply(op_id=message.op_id, tags=tags))]
        return correct_replies


class CorruptValueBehavior(Behavior):
    """Returns correct tags but corrupted values/coded elements.

    This is the adversary the BCSR decoder must defeat: the coded element
    has the right position and plausible length but flipped bytes.
    """

    name = "corrupt_value"

    def __init__(self, xor_mask: int = 0xA5) -> None:
        if not 0 <= xor_mask <= 255:
            raise ValueError("xor_mask must be a byte")
        self.xor_mask = xor_mask

    def _corrupt(self, payload: Any) -> Any:
        if isinstance(payload, CodedElement):
            return CodedElement(payload.index,
                                bytes(b ^ self.xor_mask for b in payload.data))
        if isinstance(payload, (bytes, bytearray)):
            return bytes(b ^ self.xor_mask for b in payload)
        return payload

    def on_message(self, server, sender, message, correct_replies):
        corrupted: List[Envelope] = []
        for dest, reply in correct_replies:
            if isinstance(reply, DataReply):
                reply = DataReply(op_id=reply.op_id, tag=reply.tag,
                                  payload=self._corrupt(reply.payload))
            elif isinstance(reply, ValueReply):
                reply = ValueReply(op_id=reply.op_id, tag=reply.tag,
                                   payload=self._corrupt(reply.payload))
            elif isinstance(reply, HistoryReply):
                reply = HistoryReply(
                    op_id=reply.op_id,
                    history=tuple(TaggedValue(p.tag, self._corrupt(p.value))
                                  for p in reply.history),
                )
            corrupted.append((dest, reply))
        return corrupted


class HistoryReplayBehavior(Behavior):
    """Answers data queries with an *older* entry of its own history.

    ``offset=1`` replays the second-newest stored pair -- exactly the lie
    server ``s0`` tells in the Theorem 5 / Theorem 6 lower-bound executions
    ("suppose s0 returns v1 instead of v2").  The replayed pair is a real
    former state of the register, so it is indistinguishable from an honest
    but slow server -- the hardest kind of lie to defend against.
    """

    name = "history_replay"

    def __init__(self, offset: int = 1) -> None:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.offset = offset

    def _replayed(self, server) -> TaggedValue:
        index = max(0, len(server.history) - 1 - self.offset)
        return server.history[index]

    def on_message(self, server, sender, message, correct_replies):
        if isinstance(message, QueryData):
            pair = self._replayed(server)
            return [(sender, DataReply(op_id=message.op_id, tag=pair.tag,
                                       payload=pair.value))]
        if isinstance(message, QueryHistory):
            pair = self._replayed(server)
            cutoff = server.history.index(pair) + 1
            return [(sender, HistoryReply(op_id=message.op_id,
                                          history=tuple(server.history[:cutoff])))]
        if isinstance(message, QueryTagHistory):
            pair = self._replayed(server)
            cutoff = server.history.index(pair) + 1
            tags = tuple(p.tag for p in server.history[:cutoff])
            return [(sender, TagHistoryReply(op_id=message.op_id, tags=tags))]
        return correct_replies


class EquivocateBehavior(Behavior):
    """Tells different readers different stories.

    Each distinct querier is answered with a *different* fabricated value
    under the same forged tag -- the canonical attack reliable broadcast
    exists to prevent, here defeated by witness counting instead.
    """

    name = "equivocate"

    def __init__(self, tag_boost: int = 500_000) -> None:
        self.tag_boost = tag_boost
        self._per_reader: Dict[ProcessId, bytes] = {}

    def _story_for(self, reader: ProcessId) -> bytes:
        if reader not in self._per_reader:
            self._per_reader[reader] = f"lie-for-{reader}".encode()
        return self._per_reader[reader]

    def on_message(self, server, sender, message, correct_replies):
        if isinstance(message, QueryData):
            forged = Tag(server.max_tag.num + self.tag_boost, server.server_id)
            return [(sender, DataReply(op_id=message.op_id, tag=forged,
                                       payload=self._story_for(sender)))]
        return correct_replies


class MultiReplyBehavior(Behavior):
    """Sends every correct reply several times ("multiple replies").

    Duplicate replies must not let one server masquerade as several
    witnesses; :class:`repro.core.operation.ReplyCollector` counts each
    server once, which this behaviour exists to exercise.
    """

    name = "multi_reply"

    def __init__(self, copies: int = 3) -> None:
        if copies < 1:
            raise ValueError("copies must be at least 1")
        self.copies = copies

    def on_message(self, server, sender, message, correct_replies):
        return [envelope for envelope in correct_replies
                for _ in range(self.copies)]


class FlipFlopBehavior(Behavior):
    """Alternates between honest and stale replies per message.

    Exercises readers against a server whose lies are intermittent, which
    defeats naive "blacklist a server after one bad reply" designs.
    """

    name = "flip_flop"

    def __init__(self) -> None:
        self._honest_turn = True
        self._stale = StaleBehavior()

    def on_message(self, server, sender, message, correct_replies):
        self._honest_turn = not self._honest_turn
        if self._honest_turn:
            return correct_replies
        return self._stale.on_message(server, sender, message, correct_replies)


class RandomBehavior(Behavior):
    """Randomly picks a strategy per message (seeded, reproducible).

    A crude approximation of "arbitrary" used by the randomized resilience
    sweeps: each message is answered honestly, silently, stalely, with a
    forged tag, or corrupted, with equal probability.
    """

    name = "random"

    def __init__(self, rng: Optional[SimRng] = None) -> None:
        self.rng = rng or SimRng(0, "byz-random")
        self._strategies: List[Behavior] = [
            Behavior(), SilentBehavior(), StaleBehavior(),
            ForgeTagBehavior(), CorruptValueBehavior(),
        ]

    def on_message(self, server, sender, message, correct_replies):
        strategy = self.rng.choice(self._strategies)
        return strategy.on_message(server, sender, message, correct_replies)


#: Name -> factory map used by failure schedules and the CLI.
BEHAVIOR_REGISTRY = {
    "honest": Behavior,
    "silent": SilentBehavior,
    "stale": StaleBehavior,
    "forge_tag": ForgeTagBehavior,
    "history_replay": HistoryReplayBehavior,
    "corrupt_value": CorruptValueBehavior,
    "equivocate": EquivocateBehavior,
    "multi_reply": MultiReplyBehavior,
    "flip_flop": FlipFlopBehavior,
    "random": RandomBehavior,
}


def make_behavior(name: str, **kwargs) -> Behavior:
    """Instantiate a registered behaviour by name."""
    try:
        factory = BEHAVIOR_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown behavior {name!r}; known: {sorted(BEHAVIOR_REGISTRY)}"
        ) from None
    return factory(**kwargs)
