"""Byzantine server behaviours and scripted adversaries.

The paper's fault model lets up to ``f`` servers "behave arbitrarily".
:mod:`repro.byzantine.behaviors` provides reusable strategies covering the
deviations the paper names explicitly (wrong values, wrong timestamps, no
reply, multiple replies, stale data) and :mod:`repro.byzantine.scenarios`
scripts the exact adversarial executions of Theorems 3, 5 and 6.
"""

from repro.byzantine.behaviors import (
    BEHAVIOR_REGISTRY,
    Behavior,
    CorruptValueBehavior,
    EquivocateBehavior,
    ForgeTagBehavior,
    MultiReplyBehavior,
    SilentBehavior,
    StaleBehavior,
    make_behavior,
)

__all__ = [
    "Behavior",
    "SilentBehavior",
    "StaleBehavior",
    "ForgeTagBehavior",
    "CorruptValueBehavior",
    "EquivocateBehavior",
    "MultiReplyBehavior",
    "BEHAVIOR_REGISTRY",
    "make_behavior",
]
