"""Coordinated (colluding) Byzantine strategies.

The behaviours in :mod:`repro.byzantine.behaviors` act independently per
server.  Real Byzantine adversaries coordinate: the paper's fault model is
a single adversary controlling all ``f`` faulty servers at once.  This
module provides that coordination through a shared :class:`CollusionState`
that every colluding server consults, enabling attacks no independent
strategy can mount:

* :class:`ColludingStaleBehavior` -- all colluders agree on one historical
  version and replay exactly it, maximising the witness count of a single
  stale pair (the strongest form of the Theorem 5 lie).
* :class:`SplitWorldBehavior` -- colluders partition the clients and show
  each partition a *different* consistent story, attacking the cross-read
  agreement clause of regularity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.byzantine.behaviors import Behavior
from repro.core.messages import DataReply, QueryData, QueryTag, TagReply
from repro.core.tags import Tag, TaggedValue
from repro.types import Envelope, ProcessId


class CollusionState:
    """Shared blackboard for one coalition of Byzantine servers.

    The first colluder to answer a read picks the story; every other
    colluder repeats it, so the coalition always presents a consistent
    (and therefore maximally credible) lie.
    """

    def __init__(self) -> None:
        #: The historical pair the coalition replays, once chosen.
        self.agreed_pair: Optional[TaggedValue] = None
        #: client -> story index, for the split-world attack.
        self.assignments: Dict[ProcessId, int] = {}

    def agree_on(self, candidate: TaggedValue) -> TaggedValue:
        """Adopt ``candidate`` as the coalition's story if none is set."""
        if self.agreed_pair is None:
            self.agreed_pair = candidate
        return self.agreed_pair

    def side_of(self, client: ProcessId) -> int:
        """Deterministically split clients into two worlds (0 / 1)."""
        if client not in self.assignments:
            self.assignments[client] = len(self.assignments) % 2
        return self.assignments[client]


class ColludingStaleBehavior(Behavior):
    """All coalition members replay the *same* superseded pair.

    Independent stale servers might replay different old versions and
    split their witness votes; sharing a :class:`CollusionState` focuses
    all ``f`` Byzantine witnesses on one stale pair.  Against BSR at
    ``n >= 4f + 1`` this still fails (the pair gains at most ``f``
    witnesses beyond its honest holders) -- which the tests assert.
    """

    name = "colluding_stale"

    def __init__(self, state: CollusionState, offset: int = 1) -> None:
        self.state = state
        self.offset = offset

    def on_message(self, server, sender, message, correct_replies):
        if isinstance(message, QueryData):
            index = max(0, len(server.history) - 1 - self.offset)
            pair = self.state.agree_on(server.history[index])
            return [(sender, DataReply(op_id=message.op_id, tag=pair.tag,
                                       payload=pair.value))]
        return correct_replies


class SplitWorldBehavior(Behavior):
    """Show half the clients one forged value and half another.

    Both stories carry the same forged tag, so if the coalition could make
    either story reach ``f + 1`` witnesses, two readers would disagree on
    the write order -- a textbook regularity violation.  Witness counting
    over ``>= f + 1`` servers caps the coalition's contribution at ``f``
    per story, defeating it.
    """

    name = "split_world"

    def __init__(self, state: CollusionState, tag_boost: int = 700_000) -> None:
        self.state = state
        self.tag_boost = tag_boost

    def _story(self, side: int) -> bytes:
        return f"world-{side}".encode()

    def on_message(self, server, sender, message, correct_replies):
        if isinstance(message, QueryData):
            side = self.state.side_of(sender)
            forged = Tag(server.max_tag.num + self.tag_boost, server.server_id)
            return [(sender, DataReply(op_id=message.op_id, tag=forged,
                                       payload=self._story(side)))]
        if isinstance(message, QueryTag):
            forged = Tag(server.max_tag.num + self.tag_boost, server.server_id)
            return [(sender, TagReply(op_id=message.op_id, tag=forged))]
        return correct_replies


def make_coalition(behavior_cls, count: int, **kwargs) -> List[Behavior]:
    """Build ``count`` behaviours sharing one fresh :class:`CollusionState`."""
    state = CollusionState()
    return [behavior_cls(state, **kwargs) for _ in range(count)]
