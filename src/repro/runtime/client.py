"""Asyncio client executing register operations against TCP server nodes.

The client is *self-healing*: each server has a supervisor task that pumps
replies while the connection is up and re-dials with exponential backoff
plus jitter while it is down (including servers that were unreachable when
:meth:`AsyncRegisterClient.connect` first ran).  When a connection comes
back mid-operation, the frames the in-flight operation already sent to
that server are re-sent -- safe, because every operation is an idempotent
quorum state machine keyed by ``op_id`` (duplicate requests produce
duplicate replies, which the reply filter already tolerates).
"""

from __future__ import annotations

import asyncio
import logging
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.abd import ABDReadOperation, ABDWriteOperation
from repro.core.bcsr import BCSRReadOperation, BCSRWriteOperation, make_codec
from repro.core.bsr import BSRReadOperation, BSRReaderState, BSRWriteOperation
from repro.core.namespace import DEFAULT_REGISTER, NamespacedOperation
from repro.core.messages import Throttled
from repro.core.operation import ClientOperation
from repro.core.regular import HistoryReadOperation, TwoRoundReadOperation
from repro.errors import AuthenticationError, ConfigurationError, LivenessError, ProtocolError
from repro.obs import LogGate, MetricRegistry, OpSpan, OpTracer, phase_name
from repro.transport.auth import Authenticator
from repro.transport.codec import (
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.types import ProcessId

logger = logging.getLogger(__name__)

CLIENT_ALGORITHMS = ("bsr", "bsr-history", "bsr-2round", "bcsr", "abd")


class AsyncRegisterClient:
    """Execute reads/writes of one register over TCP.

    The client opens one connection per server (lazily, tolerating servers
    that are down -- the protocols only need ``n - f`` of them) and drives
    the same operation state machines the simulator uses.  With
    ``reconnect=True`` (the default) lost or never-established connections
    are re-dialed in the background with exponential backoff and jitter.

    Usage::

        client = AsyncRegisterClient("w000", addresses, f=1, auth=auth)
        await client.connect()
        await client.write(b"hello")
        value = await client.read()
        print(client.stats())
        await client.close()
    """

    def __init__(self, client_id: ProcessId,
                 addresses: Dict[ProcessId, Tuple[str, int]], f: int,
                 auth: Authenticator, algorithm: str = "bsr",
                 timeout: float = 30.0, initial_value: bytes = b"",
                 namespaced: bool = False, reconnect: bool = True,
                 backoff_base: float = 0.05, backoff_max: float = 2.0,
                 drain_timeout: float = 1.0,
                 registry: Optional[MetricRegistry] = None,
                 trace_sink: Optional[Any] = None) -> None:
        if algorithm not in CLIENT_ALGORITHMS:
            raise ConfigurationError(
                f"algorithm {algorithm!r} not supported by the asyncio "
                f"runtime; choose from {CLIENT_ALGORITHMS}"
            )
        self.client_id = client_id
        self.addresses = dict(addresses)
        self.servers: List[ProcessId] = sorted(self.addresses)
        self.f = f
        self.auth = auth
        self.algorithm = algorithm
        self.timeout = timeout
        self.initial_value = initial_value
        self.namespaced = namespaced
        self.reconnect = reconnect
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.drain_timeout = drain_timeout
        self.reader_state = BSRReaderState(initial_value)
        self._register_states: Dict[str, BSRReaderState] = {}
        self._codec = (make_codec(len(self.servers), f)
                       if algorithm == "bcsr" else None)
        self._connections: Dict[ProcessId, Tuple[asyncio.StreamReader,
                                                 asyncio.StreamWriter]] = {}
        self._reply_queue: "asyncio.Queue[Tuple[ProcessId, Any]]" = asyncio.Queue()
        self._supervisors: Dict[ProcessId, asyncio.Task] = {}
        #: ``(message type name, sealed frame)`` of the in-flight
        #: operation, per destination -- replayed on reconnect so a healed
        #: link can still serve the op, and replayed per-type after a
        #: throttle (the server names the shed frame's type).
        self._pending: Dict[ProcessId, List[Tuple[str, bytes]]] = {}
        self._op_retried = False
        self._closing = False
        self.registry = registry if registry is not None else MetricRegistry()
        client = str(client_id)
        #: Resilience counters, pre-created so :meth:`stats` always shows
        #: every key.  Labeled per client; the op/phase histograms fed by
        #: the tracer are *not*, so clients sharing a registry (a soak
        #: run) aggregate naturally.
        self._counters = {
            name: self.registry.counter(f"client_{name}_total", client=client)
            for name in ("connects", "reconnects", "disconnects",
                         "frames_dropped", "frames_resent", "ops_retried",
                         "throttled", "drain_timeouts", "drain_failures")
        }
        self._tracer = OpTracer(self.registry, sink=trace_sink,
                                client_id=client, algorithm=algorithm)
        self._current_span: Optional[OpSpan] = None
        self._log = LogGate(logger, self.registry,
                            component=f"client/{client}")

    # -- connection management ----------------------------------------------
    async def connect(self) -> int:
        """Open connections to every reachable server; returns the count.

        Servers that are down are not fatal: with ``reconnect`` enabled a
        background supervisor keeps re-dialing them, so a server that
        comes up later joins the quorum without another ``connect`` call.
        """
        for pid in self.servers:
            if pid in self._connections:
                continue
            if await self._dial(pid):
                self._counters["connects"].inc()
            elif not self.reconnect:
                continue
            self._ensure_supervisor(pid)
        return len(self._connections)

    async def close(self) -> None:
        """Tear down all connections and supervisor tasks."""
        self._closing = True
        for task in self._supervisors.values():
            task.cancel()
        for task in self._supervisors.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._supervisors.clear()
        for _, writer in self._connections.values():
            writer.close()
        for _, writer in list(self._connections.values()):
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._connections.clear()

    def stats(self) -> Dict[str, int]:
        """Resilience counters: reconnects, disconnects, frames dropped /
        resent, operations retried, throttle backoffs, drain timeouts,
        live connections.  A compatibility view over :attr:`registry`."""
        stats = {name: int(counter.value)
                 for name, counter in self._counters.items()}
        stats["connected"] = len(self._connections)
        return stats

    async def _dial(self, pid: ProcessId) -> bool:
        if pid in self._connections:
            return True
        host, port = self.addresses[pid]
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            logger.debug("client %s cannot reach %s: %s",
                         self.client_id, pid, exc)
            return False
        self._connections[pid] = (reader, writer)
        return True

    def _drop_connection(self, pid: ProcessId) -> None:
        connection = self._connections.pop(pid, None)
        if connection is not None:
            connection[1].close()

    def _ensure_supervisor(self, pid: ProcessId) -> None:
        task = self._supervisors.get(pid)
        if task is None or task.done():
            self._supervisors[pid] = asyncio.ensure_future(
                self._supervise(pid))

    async def _supervise(self, pid: ProcessId) -> None:
        """Pump replies while connected; re-dial with backoff while not."""
        attempt = 0
        while not self._closing:
            connection = self._connections.get(pid)
            if connection is None:
                if not self.reconnect:
                    return
                delay = min(self.backoff_max,
                            self.backoff_base * (2 ** min(attempt, 16)))
                # Full jitter keeps a fleet of clients from re-dialing a
                # freshly restarted server in lockstep.
                await asyncio.sleep(delay * (0.5 + random.random()))
                if self._closing:
                    return
                if not await self._dial(pid):
                    attempt += 1
                    continue
                attempt = 0
                self._counters["reconnects"].inc()
                await self._resend_pending(pid)
                connection = self._connections.get(pid)
                if connection is None:
                    continue
            await self._pump_replies(pid, connection[0])
            if self._closing:
                return
            self._drop_connection(pid)
            self._counters["disconnects"].inc()

    async def _pump_replies(self, pid: ProcessId,
                            reader: asyncio.StreamReader) -> None:
        """Deliver verified frames to the reply queue until the link dies.

        Connection loss returns (it never poisons the queue): the
        supervisor decides whether to re-dial.
        """
        try:
            while True:
                frame = await read_frame(reader)
                try:
                    sender, payload = self.auth.open(frame)
                    message = decode_message(payload)
                except (AuthenticationError, ProtocolError) as exc:
                    self._counters["frames_dropped"].inc()
                    self._log.warning(
                        "bad-frame", "client %s dropping bad frame from "
                        "%s: %s", self.client_id, pid, exc)
                    continue
                if sender != pid:
                    # A Byzantine server cannot speak for another server:
                    # the signature pins the sender.
                    self._counters["frames_dropped"].inc()
                    self._log.warning(
                        "wrong-sender", "client %s: connection to %s "
                        "delivered a frame signed by %s; dropping",
                        self.client_id, pid, sender)
                    continue
                await self._reply_queue.put((sender, message))
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, OSError, asyncio.CancelledError):
            return

    # -- operations -------------------------------------------------------------
    async def _resend_pending(self, pid: ProcessId,
                              only_type: Optional[str] = None) -> None:
        """Replay the in-flight operation's frames to ``pid``.

        ``only_type`` narrows the replay to frames of one message type
        (the throttle path: the server names the frame it shed, and
        replaying anything more would spend the refilled token on an
        already-delivered frame).
        """
        frames = [sealed for type_name, sealed in self._pending.get(pid, ())
                  if only_type is None or type_name == only_type]
        connection = self._connections.get(pid)
        if not frames or connection is None:
            return
        _, writer = connection
        try:
            for sealed in frames:
                write_frame(writer, sealed)
            await asyncio.wait_for(writer.drain(), self.drain_timeout)
        except (OSError, ConnectionError, asyncio.TimeoutError):
            return
        self._counters["frames_resent"].inc(len(frames))
        if self._current_span is not None:
            self._current_span.note_resend(len(frames))
        self._op_retried = True

    async def _send(self, envelopes) -> None:
        drains = []
        for dest, message in envelopes:
            sealed = self.auth.seal(self.client_id, encode_message(message))
            self._pending.setdefault(dest, []).append(
                (type(message).__name__, sealed))
            connection = self._connections.get(dest)
            if connection is None:
                continue  # down right now; resent if the link heals in time
            _, writer = connection
            try:
                write_frame(writer, sealed)
            except (OSError, ConnectionError, RuntimeError):
                self._drop_connection(dest)
                continue
            drains.append(self._drain(dest, writer))
        if drains:
            # Backpressure: flush every connection before proceeding, but
            # concurrently and with a cap -- one blackholed server must not
            # stall the quorum.
            await asyncio.gather(*drains)

    async def _drain(self, pid: ProcessId, writer: asyncio.StreamWriter) -> None:
        try:
            await asyncio.wait_for(writer.drain(), self.drain_timeout)
        except asyncio.TimeoutError:
            # Slow or blackholed peer: leave the bytes buffered rather
            # than stalling the operation on one link.
            self._counters["drain_timeouts"].inc()
        except (OSError, ConnectionError):
            self._counters["drain_failures"].inc()
            self._drop_connection(pid)

    async def _run_operation(self, operation: ClientOperation) -> Any:
        self._pending = {}
        self._op_retried = False
        loop = asyncio.get_event_loop()
        span = self._tracer.start(
            kind=operation.kind, op_id=operation.op_id, witness=self.f + 1,
            quorum=len(self.servers) - self.f, now=loop.time())
        self._current_span = span
        outcome = "error"
        try:
            # The phase opens before its frames go out, so send/drain time
            # counts toward the phase that caused it.
            span.begin_phase(phase_name(operation.kind, 1, self.algorithm),
                             loop.time())
            await self._send(operation.start())
            rounds = operation.rounds or 1
            deadline = loop.time() + self.timeout
            while not operation.done:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    outcome = "timeout"
                    raise LivenessError(
                        f"{operation.kind} by {self.client_id} did not complete "
                        f"within {self.timeout}s (are n - f servers up?)"
                    )
                try:
                    sender, message = await asyncio.wait_for(
                        self._reply_queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    continue
                if isinstance(message, Throttled):
                    # The server shed our frame (rate limit).  Back off
                    # for its estimate (bounded by the deadline), then
                    # replay the shed frame -- the operation is an
                    # idempotent quorum state machine, so a replay is
                    # safe even if the original did land.
                    self._counters["throttled"].inc()
                    span.note_throttle()
                    pause = min(max(message.retry_after, self.backoff_base),
                                self.backoff_max,
                                max(deadline - loop.time(), 0.0))
                    if pause > 0:
                        await asyncio.sleep(pause)
                    await self._resend_pending(
                        sender, only_type=message.dropped or None)
                    continue
                if getattr(message, "op_id", None) == operation.op_id:
                    # Attribute the reply to the phase that solicited it
                    # (before on_reply may advance the round).
                    span.record_reply(str(sender), loop.time())
                envelopes = operation.on_reply(sender, message)
                if operation.rounds != rounds and not operation.done:
                    rounds = operation.rounds
                    span.begin_phase(
                        phase_name(operation.kind, rounds, self.algorithm),
                        loop.time())
                await self._send(envelopes)
            if span.throttles:
                outcome = "throttled"
            elif self._op_retried:
                outcome = "retried"
            else:
                outcome = "ok"
            return operation.result
        finally:
            span.finish(outcome, loop.time())
            self._current_span = None
            self._pending = {}
            if self._op_retried:
                self._counters["ops_retried"].inc()

    def _reader_state_for(self, register: str) -> BSRReaderState:
        if not self.namespaced:
            return self.reader_state
        if register not in self._register_states:
            self._register_states[register] = BSRReaderState(self.initial_value)
        return self._register_states[register]

    def _maybe_namespace(self, operation: ClientOperation, register: str):
        if self.namespaced:
            return NamespacedOperation(register, operation)
        return operation

    async def write(self, value: Any,
                    register: str = DEFAULT_REGISTER) -> Any:
        """Write ``value``; returns the tag the write committed under.

        ``register`` selects the named register on namespaced clusters.
        """
        servers, f = self.servers, self.f
        if self.algorithm == "bcsr":
            operation = BCSRWriteOperation(self.client_id, servers, f, value,
                                           codec=self._codec)
        elif self.algorithm == "abd":
            operation = ABDWriteOperation(self.client_id, servers, f, value)
        else:
            operation = BSRWriteOperation(self.client_id, servers, f, value)
        return await self._run_operation(self._maybe_namespace(operation, register))

    async def read(self, register: str = DEFAULT_REGISTER) -> Any:
        """Read the register; returns the value.

        ``register`` selects the named register on namespaced clusters.
        """
        servers, f = self.servers, self.f
        state = self._reader_state_for(register)
        if self.algorithm == "bsr":
            operation = BSRReadOperation(self.client_id, servers, f,
                                         reader_state=state)
        elif self.algorithm == "bsr-history":
            operation = HistoryReadOperation(self.client_id, servers, f,
                                             reader_state=state)
        elif self.algorithm == "bsr-2round":
            operation = TwoRoundReadOperation(self.client_id, servers, f,
                                              reader_state=state)
        elif self.algorithm == "bcsr":
            operation = BCSRReadOperation(self.client_id, servers, f,
                                          codec=self._codec,
                                          initial_value=self.initial_value)
        else:
            operation = ABDReadOperation(self.client_id, servers, f)
        return await self._run_operation(self._maybe_namespace(operation, register))
