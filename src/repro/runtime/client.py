"""Asyncio client executing register operations against TCP server nodes."""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.abd import ABDReadOperation, ABDWriteOperation
from repro.core.bcsr import BCSRReadOperation, BCSRWriteOperation, make_codec
from repro.core.bsr import BSRReadOperation, BSRReaderState, BSRWriteOperation
from repro.core.namespace import DEFAULT_REGISTER, NamespacedOperation
from repro.core.operation import ClientOperation
from repro.core.regular import HistoryReadOperation, TwoRoundReadOperation
from repro.errors import AuthenticationError, ConfigurationError, LivenessError, ProtocolError
from repro.transport.auth import Authenticator
from repro.transport.codec import (
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.types import ProcessId

logger = logging.getLogger(__name__)

CLIENT_ALGORITHMS = ("bsr", "bsr-history", "bsr-2round", "bcsr", "abd")


class AsyncRegisterClient:
    """Execute reads/writes of one register over TCP.

    The client opens one connection per server (lazily, tolerating servers
    that are down -- the protocols only need ``n - f`` of them) and drives
    the same operation state machines the simulator uses.

    Usage::

        client = AsyncRegisterClient("w000", addresses, f=1, auth=auth)
        await client.connect()
        await client.write(b"hello")
        value = await client.read()
        await client.close()
    """

    def __init__(self, client_id: ProcessId,
                 addresses: Dict[ProcessId, Tuple[str, int]], f: int,
                 auth: Authenticator, algorithm: str = "bsr",
                 timeout: float = 30.0, initial_value: bytes = b"",
                 namespaced: bool = False) -> None:
        if algorithm not in CLIENT_ALGORITHMS:
            raise ConfigurationError(
                f"algorithm {algorithm!r} not supported by the asyncio "
                f"runtime; choose from {CLIENT_ALGORITHMS}"
            )
        self.client_id = client_id
        self.addresses = dict(addresses)
        self.servers: List[ProcessId] = sorted(self.addresses)
        self.f = f
        self.auth = auth
        self.algorithm = algorithm
        self.timeout = timeout
        self.initial_value = initial_value
        self.namespaced = namespaced
        self.reader_state = BSRReaderState(initial_value)
        self._register_states: Dict[str, BSRReaderState] = {}
        self._codec = (make_codec(len(self.servers), f)
                       if algorithm == "bcsr" else None)
        self._connections: Dict[ProcessId, Tuple[asyncio.StreamReader,
                                                 asyncio.StreamWriter]] = {}
        self._reply_queue: "asyncio.Queue[Tuple[ProcessId, Any]]" = asyncio.Queue()
        self._reader_tasks: List[asyncio.Task] = []

    # -- connection management ----------------------------------------------
    async def connect(self) -> int:
        """Open connections to every reachable server; returns the count."""
        for pid in self.servers:
            if pid in self._connections:
                continue
            host, port = self.addresses[pid]
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError as exc:
                logger.warning("client %s cannot reach %s: %s",
                               self.client_id, pid, exc)
                continue
            self._connections[pid] = (reader, writer)
            self._reader_tasks.append(
                asyncio.ensure_future(self._pump_replies(pid, reader))
            )
        return len(self._connections)

    async def close(self) -> None:
        """Tear down all connections and reader tasks."""
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._reader_tasks.clear()
        for _, writer in self._connections.values():
            writer.close()
        for _, writer in list(self._connections.values()):
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._connections.clear()

    async def _pump_replies(self, pid: ProcessId, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                try:
                    sender, payload = self.auth.open(frame)
                    message = decode_message(payload)
                except (AuthenticationError, ProtocolError) as exc:
                    logger.warning("client %s dropping bad frame from %s: %s",
                                   self.client_id, pid, exc)
                    continue
                if sender != pid:
                    # A Byzantine server cannot speak for another server:
                    # the signature pins the sender.
                    logger.warning("client %s: connection to %s delivered a "
                                   "frame signed by %s; dropping",
                                   self.client_id, pid, sender)
                    continue
                await self._reply_queue.put((sender, message))
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.CancelledError):
            return

    # -- operations -------------------------------------------------------------
    def _send(self, envelopes) -> None:
        for dest, message in envelopes:
            connection = self._connections.get(dest)
            if connection is None:
                continue  # unreachable server; quorum logic tolerates it
            _, writer = connection
            sealed = self.auth.seal(self.client_id, encode_message(message))
            write_frame(writer, sealed)

    async def _run_operation(self, operation: ClientOperation) -> Any:
        self._send(operation.start())
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.timeout
        while not operation.done:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise LivenessError(
                    f"{operation.kind} by {self.client_id} did not complete "
                    f"within {self.timeout}s (are n - f servers up?)"
                )
            try:
                sender, message = await asyncio.wait_for(
                    self._reply_queue.get(), timeout=remaining
                )
            except asyncio.TimeoutError:
                continue
            self._send(operation.on_reply(sender, message))
        return operation.result

    def _reader_state_for(self, register: str) -> BSRReaderState:
        if not self.namespaced:
            return self.reader_state
        if register not in self._register_states:
            self._register_states[register] = BSRReaderState(self.initial_value)
        return self._register_states[register]

    def _maybe_namespace(self, operation: ClientOperation, register: str):
        if self.namespaced:
            return NamespacedOperation(register, operation)
        return operation

    async def write(self, value: Any,
                    register: str = DEFAULT_REGISTER) -> Any:
        """Write ``value``; returns the tag the write committed under.

        ``register`` selects the named register on namespaced clusters.
        """
        servers, f = self.servers, self.f
        if self.algorithm == "bcsr":
            operation = BCSRWriteOperation(self.client_id, servers, f, value,
                                           codec=self._codec)
        elif self.algorithm == "abd":
            operation = ABDWriteOperation(self.client_id, servers, f, value)
        else:
            operation = BSRWriteOperation(self.client_id, servers, f, value)
        return await self._run_operation(self._maybe_namespace(operation, register))

    async def read(self, register: str = DEFAULT_REGISTER) -> Any:
        """Read the register; returns the value.

        ``register`` selects the named register on namespaced clusters.
        """
        servers, f = self.servers, self.f
        state = self._reader_state_for(register)
        if self.algorithm == "bsr":
            operation = BSRReadOperation(self.client_id, servers, f,
                                         reader_state=state)
        elif self.algorithm == "bsr-history":
            operation = HistoryReadOperation(self.client_id, servers, f,
                                             reader_state=state)
        elif self.algorithm == "bsr-2round":
            operation = TwoRoundReadOperation(self.client_id, servers, f,
                                              reader_state=state)
        elif self.algorithm == "bcsr":
            operation = BCSRReadOperation(self.client_id, servers, f,
                                          codec=self._codec,
                                          initial_value=self.initial_value)
        else:
            operation = ABDReadOperation(self.client_id, servers, f)
        return await self._run_operation(self._maybe_namespace(operation, register))
