"""Asyncio client executing register operations against TCP server nodes.

The client is *self-healing*: each server has a supervisor task that pumps
replies while the connection is up and re-dials with exponential backoff
plus jitter while it is down (including servers that were unreachable when
:meth:`AsyncRegisterClient.connect` first ran).  When a connection comes
back mid-operation, the frames the in-flight operations already sent to
that server are re-sent -- safe, because every operation is an idempotent
quorum state machine keyed by ``op_id`` (duplicate requests produce
duplicate replies, which the reply filter already tolerates).

The client is also *multiplexed*: any number of operations may be in
flight at once over the same set of connections.  A per-client
:class:`~repro.runtime.dispatch.OpDispatcher` tables each operation's
state (pending frames, reply queue, span), routes every incoming reply
to the operation that owns it by ``op_id``, and admits new operations
through a FIFO gate capped at ``max_inflight``.  Outgoing frames from
all operations are coalesced per connection per event-loop tick into a
single burst plus one ``drain()``
(:class:`~repro.runtime.dispatch.BatchedConnection`).

One ordering rule remains: *writes by the same client to the same
register are serialized* (reads multiplex freely, and writes overlap
with reads and with other clients' writes).  Two overlapping writes by
one writer could query the same tag ceiling and commit two different
values under the same ``(num, writer)`` tag, which breaks the tag
uniqueness every algorithm here relies on -- the paper's executions are
well-formed (each process runs one operation at a time), and the write
lock is what preserves that assumption per register under multiplexing.
"""

from __future__ import annotations

import asyncio
import logging
import random
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.keys import key_error
from repro.core.namespace import DEFAULT_REGISTER, NamespacedOperation
from repro.core.messages import Throttled
from repro.sharding.ring import Placement
from repro.core.operation import ClientOperation
from repro.errors import AuthenticationError, ConfigurationError, LivenessError, ProtocolError
from repro.obs import (
    LogGate,
    MetricRegistry,
    OpTracer,
    SamplingSink,
    phase_name,
)
from repro.protocols import OpContext, get_spec, runtime_names
from repro.runtime.dispatch import BatchedConnection, OpDispatcher, OpState
from repro.transport.auth import Authenticator
from repro.transport.codec import (
    FrameAssembler,
    encode_message,
)
from repro.transport.codec2 import CachedDecoder, CachedEncoder, peek_op_id_v2
from repro.types import ProcessId

logger = logging.getLogger(__name__)


def __getattr__(name: str):
    # Compatibility view: the supported-algorithm tuple is now the
    # registry's runtime listing, resolved lazily so importing this
    # module never forces protocol registration order.
    if name == "CLIENT_ALGORITHMS":
        return runtime_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Supported wire encodings: ``v2`` is the binary codec with per-burst
#: batch sealing, ``v1`` the JSON codec with one HMAC per frame.
WIRE_VERSIONS = ("v1", "v2")

#: Bytes pulled from a connection per read syscall in the reply pump.
READ_CHUNK = 64 * 1024

#: Per-key client-side caches (reader states, write locks) are LRU-bounded
#: at this many keys so a key-routed client scanning a large keyspace
#: stays within a fixed footprint.  Evicting a reader state just resets
#: that key's semi-fast hint (the next read behaves like a fresh
#: reader's); evicting an uncontended write lock is invisible.
MAX_KEY_STATES = 4096


def _expire(done: "asyncio.Future") -> None:
    """Deadline timer callback: time out an operation still in flight."""
    if not done.done():
        done.set_exception(TimeoutError())


class AsyncRegisterClient:
    """Execute reads/writes of one register over TCP.

    The client opens one connection per server (lazily, tolerating servers
    that are down -- the protocols only need ``n - f`` of them) and drives
    the same operation state machines the simulator uses.  With
    ``reconnect=True`` (the default) lost or never-established connections
    are re-dialed in the background with exponential backoff and jitter.
    Operations may be issued concurrently (``asyncio.gather`` of reads
    and writes on one client); ``max_inflight`` bounds how many execute
    at once, with excess operations queueing FIFO.

    Usage::

        client = AsyncRegisterClient("w000", addresses, f=1, auth=auth)
        await client.connect()
        await client.write(b"hello")
        values = await asyncio.gather(*[client.read() for _ in range(16)])
        print(client.stats())
        await client.close()
    """

    def __init__(self, client_id: ProcessId,
                 addresses: Dict[ProcessId, Tuple[str, int]], f: int,
                 auth: Authenticator, algorithm: str = "bsr",
                 timeout: float = 30.0, initial_value: bytes = b"",
                 namespaced: bool = False, reconnect: bool = True,
                 backoff_base: float = 0.05, backoff_max: float = 2.0,
                 drain_timeout: float = 1.0,
                 max_inflight: Optional[int] = None,
                 registry: Optional[MetricRegistry] = None,
                 trace_sink: Optional[Any] = None,
                 trace_sample: Optional[int] = None,
                 wire: str = "v2",
                 placement: Optional[Placement] = None) -> None:
        spec = get_spec(algorithm)
        if not spec.runtime_ok:
            raise ConfigurationError(
                f"algorithm {algorithm!r} not supported by the asyncio "
                f"runtime; choose from {runtime_names()}"
            )
        self.spec = spec
        if wire not in WIRE_VERSIONS:
            raise ConfigurationError(
                f"wire version {wire!r} not supported; choose from "
                f"{WIRE_VERSIONS}"
            )
        self.client_id = client_id
        self.wire = wire
        # Query rounds repeat (only op_id varies); the cached encoder
        # re-emits the memoized tail instead of re-walking the fields.
        self._encode = CachedEncoder() if wire == "v2" else encode_message
        self.addresses = dict(addresses)
        self.servers: List[ProcessId] = sorted(self.addresses)
        self.f = f
        self.auth = auth
        self.algorithm = algorithm
        self.timeout = timeout
        self.initial_value = initial_value
        #: Key -> quorum-group resolver of a sharded keyspace.  When set,
        #: every operation is routed to its key's group (a subset of the
        #: connections) instead of the whole fleet; sharded deployments
        #: are namespaced by construction.
        self.placement = placement
        self.namespaced = namespaced or placement is not None
        self.reconnect = reconnect
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.drain_timeout = drain_timeout
        self.max_inflight = max_inflight
        self.reader_state = (spec.make_reader_state(initial_value)
                             if spec.make_reader_state is not None else None)
        self._register_states: "OrderedDict[str, Any]" = OrderedDict()
        self._codec = (spec.make_codec(
            placement.group_size if placement is not None
            else len(self.servers), f)
            if spec.make_codec is not None else None)
        self._connections: Dict[ProcessId, Tuple[asyncio.StreamReader,
                                                 asyncio.StreamWriter]] = {}
        self._senders: Dict[ProcessId, BatchedConnection] = {}
        self._supervisors: Dict[ProcessId, asyncio.Task] = {}
        self._dispatcher = OpDispatcher(max_inflight)
        #: Writes by this client are ordered per register (see module
        #: docstring); reads never touch these locks.
        self._write_locks: "OrderedDict[str, asyncio.Lock]" = OrderedDict()
        #: Per-group operation counters, resolved lazily per group tuple.
        self._group_counters: Dict[Tuple[ProcessId, ...], Any] = {}
        #: Background throttle-backoff tasks (rare; cancelled on close).
        self._throttle_tasks: set = set()
        self._closing = False
        self.registry = registry if registry is not None else MetricRegistry()
        client = str(client_id)
        #: Resilience counters, pre-created so :meth:`stats` always shows
        #: every key.  Labeled per client; the op/phase histograms fed by
        #: the tracer are *not*, so clients sharing a registry (a soak
        #: run) aggregate naturally.
        self._counters = {
            name: self.registry.counter(f"client_{name}_total", client=client)
            for name in ("connects", "reconnects", "disconnects",
                         "frames_dropped", "frames_resent", "ops_retried",
                         "throttled", "drain_timeouts", "drain_failures",
                         "ops_queued", "replies_stale", "send_batches",
                         "connections_pruned")
        }
        #: Servers :meth:`connect` skipped because no declared key routes
        #: to them (group-local pruning).  An operation that does route
        #: to one lazily un-prunes it -- see :meth:`_servers_for`.
        self._pruned: set = set()
        if trace_sink is not None and trace_sample is not None:
            # Deterministic 1-in-N span sampling, aligned with the
            # server-side flight recorders (same op_id modulus) so every
            # sampled operation can be stitched end-to-end.
            trace_sink = SamplingSink(trace_sink, trace_sample)
        self._tracer = OpTracer(self.registry, sink=trace_sink,
                                client_id=client, algorithm=algorithm)
        self._log = LogGate(logger, self.registry,
                            component=f"client/{client}")

    # -- connection management ----------------------------------------------
    async def connect(self, keys: Optional[Sequence[str]] = None) -> int:
        """Open connections to every reachable server; returns the count.

        Servers that are down are not fatal: with ``reconnect`` enabled a
        background supervisor keeps re-dialing them, so a server that
        comes up later joins the quorum without another ``connect`` call.

        ``keys`` enables *group-local pruning* on a key-routed client:
        only servers appearing in at least one of the given keys'
        placement groups are dialed, the rest are skipped and counted as
        ``connections_pruned``.  Pruning is advisory, not a fence -- an
        operation on a key that routes to a pruned server lazily dials it
        through the reconnect supervisor, so a session whose working set
        drifts past its declared keys stays live (it just pays one dial).
        """
        allowed = None
        if keys is not None:
            if self.placement is None:
                raise ConfigurationError(
                    "connect(keys=...) requires a key-routed client "
                    "(placement is not configured)")
            allowed = set()
            for key in keys:
                allowed.update(self.placement.servers_for(key))
        for pid in self.servers:
            if pid in self._connections:
                continue
            if allowed is not None and pid not in allowed:
                if pid not in self._pruned:
                    self._pruned.add(pid)
                    self._counters["connections_pruned"].inc()
                continue
            self._pruned.discard(pid)
            if await self._dial(pid):
                self._counters["connects"].inc()
            elif not self.reconnect:
                continue
            self._ensure_supervisor(pid)
        return len(self._connections)

    async def close(self) -> None:
        """Tear down all connections and supervisor tasks."""
        self._closing = True
        for task in list(self._throttle_tasks):
            task.cancel()
        self._throttle_tasks.clear()
        for task in self._supervisors.values():
            task.cancel()
        for task in self._supervisors.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
        self._supervisors.clear()
        for sender in self._senders.values():
            sender.close()
        self._senders.clear()
        for _, writer in self._connections.values():
            writer.close()
        for _, writer in list(self._connections.values()):
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._connections.clear()

    def stats(self) -> Dict[str, int]:
        """Resilience counters: reconnects, disconnects, frames dropped /
        resent, operations retried / queued at the admission gate,
        throttle backoffs, drain timeouts, stale replies dropped, live
        connections and in-flight operations.  A compatibility view over
        :attr:`registry`."""
        stats = {name: int(counter.value)
                 for name, counter in self._counters.items()}
        stats["connected"] = len(self._connections)
        stats["inflight"] = self._dispatcher.inflight
        return stats

    async def _dial(self, pid: ProcessId) -> bool:
        if pid in self._connections:
            return True
        host, port = self.addresses[pid]
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            logger.debug("client %s cannot reach %s: %s",
                         self.client_id, pid, exc)
            return False
        self._connections[pid] = (reader, writer)
        self._senders[pid] = BatchedConnection(
            pid, writer, self.drain_timeout,
            on_drain_timeout=self._counters["drain_timeouts"].inc,
            on_failure=self._on_send_failure,
            on_batch=self._note_batch,
            sealer=self._seal_burst,
        )
        return True

    def _seal_burst(self, payloads) -> list:
        """Seal one tick's payloads: one batch HMAC on the v2 wire."""
        return self.auth.seal_frames(self.client_id, payloads,
                                     batch=self.wire == "v2")

    def _note_batch(self, frames: int) -> None:
        self._counters["send_batches"].inc()

    def _on_send_failure(self, pid: ProcessId) -> None:
        self._counters["drain_failures"].inc()
        self._drop_connection(pid)

    def _drop_connection(self, pid: ProcessId) -> None:
        sender = self._senders.pop(pid, None)
        if sender is not None:
            sender.close()
        connection = self._connections.pop(pid, None)
        if connection is not None:
            connection[1].close()

    def _ensure_supervisor(self, pid: ProcessId) -> None:
        task = self._supervisors.get(pid)
        if task is None or task.done():
            self._supervisors[pid] = asyncio.ensure_future(
                self._supervise(pid))

    async def _supervise(self, pid: ProcessId) -> None:
        """Pump replies while connected; re-dial with backoff while not."""
        attempt = 0
        while not self._closing:
            connection = self._connections.get(pid)
            if connection is None:
                if not self.reconnect:
                    return
                delay = min(self.backoff_max,
                            self.backoff_base * (2 ** min(attempt, 16)))
                # Full jitter keeps a fleet of clients from re-dialing a
                # freshly restarted server in lockstep.
                await asyncio.sleep(delay * (0.5 + random.random()))
                if self._closing:
                    return
                if not await self._dial(pid):
                    attempt += 1
                    continue
                attempt = 0
                self._counters["reconnects"].inc()
                await self._resend_pending(pid)
                connection = self._connections.get(pid)
                if connection is None:
                    continue
            await self._pump_replies(pid, connection[0])
            if self._closing:
                return
            self._drop_connection(pid)
            self._counters["disconnects"].inc()

    async def _pump_replies(self, pid: ProcessId,
                            reader: asyncio.StreamReader) -> None:
        """Route verified frames to their owning ops until the link dies.

        Frames are batch-decoded: one read syscall may carry replies to
        several operations, each routed by ``op_id`` through the
        dispatcher.  Replies owned by no in-flight operation (late
        answers and ``Throttled`` frames of finished ops) are dropped
        and counted as ``replies_stale``.  Connection loss returns (it
        never poisons any op's queue): the supervisor decides whether to
        re-dial.
        """
        assembler = FrameAssembler()
        loop = asyncio.get_running_loop()
        peek = peek_op_id_v2
        lookup = self._dispatcher.lookup
        stale = self._counters["replies_stale"]
        decode = CachedDecoder()
        try:
            while True:
                data = await reader.read(READ_CHUNK)
                if not data:
                    return
                now = loop.time()
                for frame in assembler.feed(data):
                    try:
                        sender, payloads = self.auth.open_any(frame)
                    except (AuthenticationError, ProtocolError) as exc:
                        self._counters["frames_dropped"].inc()
                        self._log.warning(
                            "bad-frame", "client %s dropping bad frame from "
                            "%s: %s", self.client_id, pid, exc)
                        continue
                    if sender != pid:
                        # A Byzantine server cannot speak for another
                        # server: the signature pins the sender.
                        self._counters["frames_dropped"].inc()
                        self._log.warning(
                            "wrong-sender", "client %s: connection to %s "
                            "delivered a frame signed by %s; dropping",
                            self.client_id, pid, sender)
                        continue
                    for payload in payloads:
                        # Route by op_id before paying for the decode:
                        # stale replies are dropped and surplus replies
                        # past the quorum skipped without ever parsing
                        # their payloads (a fifth of reply traffic on a
                        # quiet 5-server cluster).
                        state = None
                        op_id = peek(payload)
                        if op_id is not None:
                            state = lookup(op_id)
                            if state is None:
                                stale.inc()
                                continue
                            if state.operation.done:
                                continue  # surplus; already decided
                        try:
                            message = decode(payload)
                        except ProtocolError as exc:
                            self._counters["frames_dropped"].inc()
                            self._log.warning(
                                "bad-frame", "client %s dropping bad payload "
                                "from %s: %s", self.client_id, pid, exc)
                            continue
                        if not self._dispatch_reply(sender, message, now,
                                                    state):
                            stale.inc()
        except ProtocolError as exc:
            # Oversized frame: treat the stream as poisoned and let the
            # supervisor re-dial from a clean slate.
            self._counters["frames_dropped"].inc()
            self._log.warning("bad-frame", "client %s resetting link to %s: "
                              "%s", self.client_id, pid, exc)
            return
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, OSError, asyncio.CancelledError):
            return

    # -- operations -------------------------------------------------------------
    async def _resend_pending(self, pid: ProcessId,
                              only_type: Optional[str] = None,
                              states: Optional[List[OpState]] = None) -> None:
        """Replay in-flight frames to ``pid``.

        By default every in-flight operation's frames for that server
        are replayed (the reconnect path -- a healed link can still
        serve all of them).  ``states`` narrows the replay to specific
        operations (the throttle path replays only the op that owns the
        shed frame), and ``only_type`` to frames of one message type
        (the server names the frame it shed, and replaying anything more
        would spend the refilled token on an already-delivered frame).
        """
        sender_conn = self._senders.get(pid)
        if sender_conn is None:
            return
        if states is None:
            states = self._dispatcher.states()
        flushes = []
        resent = 0
        for state in states:
            frames = state.pending_frames(pid, only_type)
            if not frames:
                continue
            for payload in frames:
                flushes.append(sender_conn.send(payload))
            resent += len(frames)
            if state.span is not None:
                state.span.note_resend(len(frames))
            state.retried = True
        if not flushes:
            return
        for flush in flushes:
            if not flush.done():
                await flush
        self._counters["frames_resent"].inc(resent)

    async def _send(self, state: OpState, envelopes) -> None:
        """Encode and enqueue one operation's outgoing envelopes.

        Payloads are recorded in the op's pending map first (so a link
        that heals mid-operation can be served by replay), then handed
        to the per-connection batch writers, which seal each burst at
        flush time -- one HMAC covers the whole tick's frames on the v2
        wire.  Payloads are destination-agnostic, so one broadcast
        message (a query round sends the same object to every server)
        is encoded exactly once.  Awaiting the flush futures applies
        backpressure -- every reachable connection's burst is written
        and drained (bounded by ``drain_timeout``, adaptively shortened
        on chronically stalled links) before the operation proceeds.
        """
        flushes = []
        encoded_cache: Dict[int, tuple] = {}
        for dest, message in envelopes:
            entry = encoded_cache.get(id(message))
            if entry is None:
                entry = (type(message).__name__, self._encode(message))
                encoded_cache[id(message)] = entry
            state.pending.setdefault(dest, []).append(entry)
            sender_conn = self._senders.get(dest)
            if sender_conn is None:
                continue  # down right now; resent if the link heals in time
            flushes.append(sender_conn.send(entry[1]))
        # The futures are per-connection burst futures (frames enqueued
        # in the same tick share one), so this is a handful of awaits at
        # most -- cheaper than a gather, and later futures are usually
        # already done by the time the first one resolves.
        for flush in flushes:
            if not flush.done():
                await flush

    def _send_nowait(self, state: OpState, envelopes) -> None:
        """Like :meth:`_send` without awaiting the flush futures.

        Used for follow-up rounds sent from the reply pump, where
        blocking on a drain would stall every connection's reply
        processing; the op's liveness is bounded by its deadline either
        way, and the flush happens on the next loop tick regardless.
        """
        encoded_cache: Dict[int, tuple] = {}
        senders = self._senders
        pending = state.pending
        for dest, message in envelopes:
            entry = encoded_cache.get(id(message))
            if entry is None:
                entry = (type(message).__name__, self._encode(message))
                encoded_cache[id(message)] = entry
            pending.setdefault(dest, []).append(entry)
            sender_conn = senders.get(dest)
            if sender_conn is not None:
                sender_conn.send(entry[1])

    def _dispatch_reply(self, sender: ProcessId, message: Any,
                        now: float, state: Optional[OpState] = None) -> bool:
        """Run one verified reply through its owning operation, inline.

        Called from the reply pump: the whole chunk's replies are
        processed in a single task step, and each waiting operation is
        woken exactly once -- when its ``done`` future resolves -- rather
        than once per reply through a queue.  ``state`` carries the
        owner when the pump already resolved it from the peeked op_id;
        v1 payloads (no peek) resolve here.  Returns ``False`` for
        replies owned by no in-flight operation.
        """
        if state is None:
            state = self._dispatcher.lookup(getattr(message, "op_id", None))
            if state is None:
                return False
        operation = state.operation
        if operation.done:
            return True  # surplus reply past the quorum; already decided
        if type(message) is Throttled:
            # The server shed one of this op's frames (rate limit).
            # Backing off means sleeping, which must not stall the pump;
            # a short-lived task handles the pause + replay (rare path).
            task = asyncio.ensure_future(
                self._handle_throttle(state, sender, message))
            self._throttle_tasks.add(task)
            task.add_done_callback(self._throttle_tasks.discard)
            return True
        span = state.span
        # Attribute the reply to the phase that solicited it (before
        # on_reply may advance the round).
        span.record_reply(str(sender), now)
        try:
            envelopes = operation.on_reply(sender, message)
        except Exception as exc:  # surface protocol bugs to the caller
            if state.done is not None and not state.done.done():
                state.done.set_exception(exc)
            return True
        if operation.rounds != state.rounds and not operation.done:
            state.rounds = operation.rounds
            span.begin_phase(
                phase_name(operation.kind, state.rounds, self.algorithm),
                now)
        if envelopes:
            self._send_nowait(state, envelopes)
        if operation.done and state.done is not None and not state.done.done():
            state.done.set_result(None)
        return True

    async def _handle_throttle(self, state: OpState, sender: ProcessId,
                               message: Throttled) -> None:
        """Back off for the server's estimate, then replay the shed frame.

        Only this operation is affected; the pause is bounded by the
        op's deadline.  The op may finish (or time out) while we sleep,
        in which case the replay is skipped.
        """
        if self._dispatcher.lookup(state.op_id) is not state:
            return
        self._counters["throttled"].inc()
        if state.span is not None:
            state.span.note_throttle()
        loop = asyncio.get_running_loop()
        pause = min(max(message.retry_after, self.backoff_base),
                    self.backoff_max,
                    max(state.deadline - loop.time(), 0.0))
        if pause > 0:
            await asyncio.sleep(pause)
        if self._dispatcher.lookup(state.op_id) is not state:
            return
        await self._resend_pending(sender, only_type=message.dropped or None,
                                   states=[state])

    async def _run_operation(self, operation: ClientOperation,
                             servers: Optional[Sequence[ProcessId]] = None
                             ) -> Any:
        loop = asyncio.get_running_loop()
        if await self._dispatcher.gate.acquire():
            self._counters["ops_queued"].inc()
        state = self._dispatcher.register(operation)
        quorum_pool = len(servers) if servers is not None else len(self.servers)
        span = self._tracer.start(
            kind=operation.kind, op_id=operation.op_id, witness=self.f + 1,
            quorum=quorum_pool - self.f, now=loop.time())
        state.span = span
        outcome = "error"
        try:
            # The phase opens before its frames go out, so send/drain time
            # counts toward the phase that caused it.
            span.begin_phase(phase_name(operation.kind, 1, self.algorithm),
                             loop.time())
            deadline = loop.time() + self.timeout
            state.deadline = deadline
            state.done = loop.create_future()
            try:
                # One timer bounds the whole operation (liveness needs
                # n - f live servers).  Replies are processed inline by
                # the pump (see _dispatch_reply); this task only sends
                # the opening round and sleeps until the op decides.
                # The timer is a bare ``call_at`` poking the same done
                # future the pump resolves -- ``asyncio.timeout_at``
                # buys nothing here but two extra coroutines per op.
                envelopes = operation.start()
                state.rounds = operation.rounds or 1
                # No flush await: the burst is written on the next
                # loop tick either way, and the op blocks on its
                # replies (which cannot arrive before the write).
                self._send_nowait(state, envelopes)
                if not operation.done:
                    timer = loop.call_at(deadline, _expire, state.done)
                    try:
                        await state.done
                    finally:
                        timer.cancel()
            except TimeoutError:
                outcome = "timeout"
                raise LivenessError(
                    f"{operation.kind} by {self.client_id} did not complete "
                    f"within {self.timeout}s (are n - f servers up?)"
                )
            if span.throttles:
                outcome = "throttled"
            elif state.retried:
                outcome = "retried"
            else:
                outcome = "ok"
            return operation.result
        finally:
            span.finish(outcome, loop.time())
            self._dispatcher.unregister(state)
            self._dispatcher.gate.release()
            if state.retried:
                self._counters["ops_retried"].inc()

    def _reader_state_for(self, register: str) -> Any:
        if self.spec.make_reader_state is None:
            return None
        if not self.namespaced:
            return self.reader_state
        state = self._register_states.get(register)
        if state is None:
            state = self._register_states[register] = (
                self.spec.make_reader_state(self.initial_value))
            if len(self._register_states) > MAX_KEY_STATES:
                self._register_states.popitem(last=False)
        else:
            self._register_states.move_to_end(register)
        return state

    def _maybe_namespace(self, operation: ClientOperation, register: str):
        if self.namespaced:
            return NamespacedOperation(register, operation)
        return operation

    def _write_lock_for(self, register: str) -> asyncio.Lock:
        lock = self._write_locks.get(register)
        if lock is None:
            lock = self._write_locks[register] = asyncio.Lock()
            if len(self._write_locks) > MAX_KEY_STATES:
                # Only shed idle locks: evicting one that is held (or
                # awaited) would let two writes to its key overlap.
                for key in list(self._write_locks):
                    if len(self._write_locks) <= MAX_KEY_STATES:
                        break
                    candidate = self._write_locks[key]
                    if candidate is not lock and not candidate.locked():
                        del self._write_locks[key]
        else:
            self._write_locks.move_to_end(register)
        return lock

    def _servers_for(self, register: str) -> List[ProcessId]:
        """The servers an operation on ``register`` talks to.

        Key-routed clients resolve the key's quorum group through the
        placement (and count the op per group); plain clients always use
        the whole fleet.  Namespaced keys are validated here, client
        side, so a typo fails fast instead of timing out against servers
        that silently drop the invalid name.
        """
        if self.placement is not None:
            group = self.placement.servers_for(register)
            if self._pruned:
                # The working set drifted past the keys declared at
                # connect time: re-admit this group's pruned servers.
                # The supervisor dials in the background and replays
                # this op's pending frames once the link is up.
                for pid in group:
                    if pid in self._pruned:
                        self._pruned.discard(pid)
                        self._ensure_supervisor(pid)
            counter = self._group_counters.get(group)
            if counter is None:
                counter = self._group_counters[group] = self.registry.counter(
                    "client_group_ops_total", client=str(self.client_id),
                    group=self.placement.group_label(group))
            counter.inc()
            return list(group)
        if self.namespaced:
            reason = key_error(register)
            if reason is not None:
                raise ConfigurationError(
                    f"invalid register name {register!r}: {reason}")
        return self.servers

    async def write(self, value: Any,
                    register: str = DEFAULT_REGISTER) -> Any:
        """Write ``value``; returns the tag the write committed under.

        ``register`` selects the named register on namespaced clusters
        and, on key-routed clients, the quorum group the write is placed
        on.  Concurrent writes by this client to the same register are
        executed in turn (see the module docstring); they still overlap
        freely with this client's reads and with other clients.
        """
        servers, f = self._servers_for(register), self.f
        async with self._write_lock_for(register):
            operation = self.spec.make_write(OpContext(
                client_id=self.client_id, servers=tuple(servers), f=f,
                value=value, initial_value=self.initial_value,
                codec=self._codec))
            return await self._run_operation(
                self._maybe_namespace(operation, register), servers=servers)

    async def read(self, register: str = DEFAULT_REGISTER) -> Any:
        """Read the register; returns the value.

        ``register`` selects the named register on namespaced clusters
        (the key's quorum group on key-routed clients).  Reads multiplex
        freely: any number may be in flight at once (subject to
        ``max_inflight``).
        """
        servers, f = self._servers_for(register), self.f
        operation = self.spec.make_read(OpContext(
            client_id=self.client_id, servers=tuple(servers), f=f,
            initial_value=self.initial_value,
            reader_state=self._reader_state_for(register),
            codec=self._codec))
        return await self._run_operation(
            self._maybe_namespace(operation, register), servers=servers)
