"""A TCP server node hosting one register-server state machine."""

from __future__ import annotations

import asyncio
import logging
import os
import random
import time
from collections import OrderedDict, deque
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.messages import (
    HealthAck,
    HealthPing,
    StatsAck,
    StatsPing,
    Throttled,
    TraceAck,
    TraceDump,
)
from repro.errors import AuthenticationError, ConfigurationError, ProtocolError
from repro.obs import PHASE_BY_MESSAGE, FlightRecorder, LogGate, MetricRegistry
from repro.runtime.limits import PerClientBuckets
from repro.transport.auth import Authenticator
from repro.transport.codec import (
    FrameAssembler,
    encode_message,
    write_frames,
)
from repro.transport.codec2 import CachedDecoder, CachedEncoder
from repro.types import ProcessId

logger = logging.getLogger(__name__)

#: How many recent ``(sender, op_id, type)`` triples a node remembers to
#: recognize re-sent frames (client retries after reconnect/throttle).
RETRY_WINDOW = 2048

#: Bytes pulled from a connection per read syscall in the frame loop.
READ_CHUNK = 64 * 1024

#: Outbound payloads queued per peer link before the oldest are shed.
#: Broadcast protocols tolerate message loss (that is their point), so
#: shedding under a long partition beats unbounded buffering.
PEER_QUEUE_LIMIT = 4096

#: Encoded payloads parked for parties with no live connection.  Entries
#: flush when the party next sends a frame; the cap bounds what a fleet
#: of vanished clients can pin in memory.
UNDELIVERED_LIMIT = 1024


class _PeerLink:
    """A lazily-dialed, self-healing outbound stream to one peer server.

    Broadcast-based protocols (``rb``, ``rb2``, ``mpr``) emit envelopes
    addressed to other *servers*.  Each such destination gets one of
    these: payloads queue here, a background task dials the peer on
    first use, seals queued payloads with the node's own identity and
    writes them as batched frames.  A dead peer costs nothing but the
    queue -- the task backs off, redials, and requeues what a broken
    pipe may have lost, which is exactly the fair-lossy-link model the
    protocols are built for (delivery is at-least-once attempted, never
    guaranteed).
    """

    def __init__(self, node: "RegisterServerNode", peer_id: ProcessId) -> None:
        self.node = node
        self.peer_id = peer_id
        self.queue: deque = deque()
        self.closed = False
        self._task: Optional[asyncio.Task] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    def send(self, payload: bytes) -> None:
        """Queue one encoded payload; spawns the sender task if idle."""
        if self.closed:
            return
        self.queue.append(payload)
        while len(self.queue) > PEER_QUEUE_LIMIT:
            self.queue.popleft()
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        self._wakeup.set()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        backoff = 0.05
        while not self.closed:
            if not self.queue:
                self._wakeup.clear()
                if self.queue:  # raced with a send()
                    continue
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=30.0)
                except asyncio.TimeoutError:
                    if not self.queue:
                        return  # idle link; send() respawns the task
                continue
            if self._writer is None:
                host, port = self.node._peers[self.peer_id]
                try:
                    reader, self._writer = await asyncio.open_connection(
                        host, port)
                    # Peers never write back on this link (server traffic
                    # flows over each side's own outbound link), but the
                    # read side must be consumed for close detection.
                    asyncio.get_running_loop().create_task(
                        self._drain_reader(reader))
                    backoff = 0.05
                except OSError:
                    await asyncio.sleep(backoff * (1.0 + random.random()))
                    backoff = min(backoff * 2, 1.0)
                    continue
            batch = []
            while self.queue and len(batch) < 64:
                batch.append(self.queue.popleft())
            try:
                write_frames(self._writer, self.node.auth.seal_frames(
                    self.node.server_id, batch,
                    batch=self.node.wire == "v2"))
                await self._writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # The peer crashed mid-flight; requeue this batch (what
                # reached the socket may be lost -- the protocols absorb
                # both loss and duplication) and redial after a pause.
                self.queue.extendleft(reversed(batch))
                self._close_writer()
                await asyncio.sleep(backoff * (1.0 + random.random()))
                backoff = min(backoff * 2, 1.0)

    async def _drain_reader(self, reader: asyncio.StreamReader) -> None:
        try:
            while await reader.read(READ_CHUNK):
                pass
        except (ConnectionResetError, OSError):
            pass

    def _close_writer(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:  # pragma: no cover - teardown races
                pass
            self._writer = None

    async def close(self) -> None:
        self.closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        self._close_writer()


class RegisterServerNode:
    """Host a server protocol (``handle(sender, msg) -> envelopes``) on TCP.

    Each inbound connection carries sealed frames; replies addressed to the
    requesting client go back over the same connection.  Envelopes addressed
    elsewhere are routed: to the node itself (a broadcast protocol counting
    its own echo) they loop back through the protocol in place; to a peer
    server (see :meth:`set_peers`) they go out over a dedicated
    :class:`_PeerLink`; to any other party with a live inbound connection
    they are written directly; and otherwise they are parked in a bounded
    stash flushed when that party next sends a frame (a reader whose relay
    raced ahead of its own request).  Only with no peers configured and no
    route at all is an envelope dropped with a warning.

    A ``behavior`` may be supplied to make the node Byzantine: it receives
    the same hooks as in the simulator.

    The node is restartable: :meth:`stop` closes the listener *and* every
    live connection (a crash severs established links too), and a
    subsequent :meth:`start` rebinds the same port and restores state from
    the snapshot, which is how the chaos nemesis models crash-recovery.

    Flow control (both optional): ``max_connections`` caps concurrent
    connections -- excess dials are closed immediately, pushing the
    client into its reconnect backoff -- and ``rate_limit`` applies a
    per-authenticated-client token bucket (``rate_limit`` frames/second,
    ``rate_burst`` tokens deep); frames over budget are shed with a
    :class:`~repro.core.messages.Throttled` reply instead of being
    buffered.  :class:`~repro.core.messages.HealthPing` and
    :class:`~repro.core.messages.StatsPing` frames are answered by the
    node itself (before the protocol, exempt from rate limiting) so
    supervisors can probe readiness -- and scrapers can pull metrics --
    of any algorithm.

    Observability: every event lands in a
    :class:`~repro.obs.MetricRegistry` (pass a shared one, or the node
    creates its own), including a per-phase service-time histogram
    (``node_phase_seconds{phase="get-tag"|"put-data"|"get-data",...}``)
    keyed by the protocol round each inbound frame belongs to.  The
    legacy :attr:`stats` mapping remains as a read-only compatibility
    view over the registry.
    """

    def __init__(self, server_id: ProcessId, protocol: Any,
                 authenticator: Authenticator, host: str = "127.0.0.1",
                 port: int = 0, behavior: Optional[Any] = None,
                 snapshot_path: Optional[str] = None,
                 max_connections: Optional[int] = None,
                 rate_limit: Optional[float] = None,
                 rate_burst: Optional[float] = None,
                 registry: Optional[MetricRegistry] = None,
                 wire: str = "v2",
                 flight: Optional[FlightRecorder] = None,
                 flight_sample: int = 64,
                 flight_capacity: int = 1024) -> None:
        if wire not in ("v1", "v2"):
            raise ConfigurationError(
                f"wire version {wire!r} not supported; choose v1 or v2")
        self.server_id = server_id
        self.protocol = protocol
        self.auth = authenticator
        self.host = host
        self.port = port
        self.behavior = behavior
        #: Wire encoding for *replies* (inbound frames auto-detect):
        #: ``v2`` = binary codec + per-chunk batch sealing, ``v1`` =
        #: JSON + one HMAC per reply frame.
        self.wire = wire
        # Replies repeat (same pair, fresh op_id); the cached encoder
        # re-emits the memoized tail instead of re-walking the fields.
        # Inbound query bursts repeat the same way, so decode is
        # memoized too (both fall back transparently on anything else).
        self._encode = CachedEncoder() if wire == "v2" else encode_message
        self._decode = CachedDecoder()
        #: When set, the node checkpoints its state here after every
        #: mutation and restores from it on start (crash recovery).
        self.snapshot_path = snapshot_path
        self.max_connections = max_connections
        self.rate_limit = rate_limit
        self._buckets = (PerClientBuckets(rate_limit, rate_burst)
                         if rate_limit is not None else None)
        self.registry = registry if registry is not None else MetricRegistry()
        #: Server-side span records for causal trace stitching.  Sampling
        #: is deterministic by op_id, matching the client's SamplingSink;
        #: ``flight_sample=0`` turns recording off entirely.
        if flight is not None:
            self.flight: Optional[FlightRecorder] = flight
        elif flight_sample > 0:
            self.flight = FlightRecorder(node_id=str(server_id),
                                         capacity=flight_capacity,
                                         sample=flight_sample)
        else:
            self.flight = None
        node = str(server_id)
        self._counters = {
            name: self.registry.counter(f"node_{name}_total", node=node)
            for name in ("frames", "frames_bad", "frames_retried",
                         "frames_throttled", "connections_refused",
                         "health_pings", "stats_pings", "trace_dumps",
                         "wire_frames", "reply_batches")
        }
        self._connections_gauge = self.registry.gauge(
            "node_connections", node=node)
        #: phase name -> pre-resolved ``node_phase_seconds`` histogram,
        #: filled lazily; saves a registry lock + label sort per message.
        self._phase_hists: Dict[str, Any] = {}
        #: message class -> that histogram directly (classes map to one
        #: phase, except namespaced wrappers, which resolve per inner).
        self._hist_by_cls: Dict[type, Any] = {}
        #: Hot-path counters pulled out of the dict (one lookup saved
        #: per inbound message).
        self._c_frames = self._counters["frames"]
        self._c_frames_bad = self._counters["frames_bad"]
        self._c_wire_frames = self._counters["wire_frames"]
        self._c_frames_retried = self._counters["frames_retried"]
        self._log = LogGate(logger, self.registry, component=f"node/{node}")
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        self._checkpoint_lock: Optional[asyncio.Lock] = None
        self._checkpoint_seq = 0
        self._checkpoint_written = 0
        self._last_snapshot_at: Optional[float] = None
        #: Recently served ``(sender, op_id, type)`` triples, newest last.
        self._recent_frames: "OrderedDict[tuple, None]" = OrderedDict()
        #: Peer server id -> (host, port); set via :meth:`set_peers` for
        #: protocols whose servers talk to each other.
        self._peers: Dict[ProcessId, Tuple[str, int]] = {}
        self._peer_links: Dict[ProcessId, _PeerLink] = {}
        #: Authenticated sender -> the writer of its latest connection,
        #: for pushing server-initiated envelopes (relays, late acks).
        self._parties: Dict[ProcessId, asyncio.StreamWriter] = {}
        #: dest -> encoded payloads with no current route, newest dest
        #: last; flushed into the reply batch when the party next writes.
        self._undelivered: "OrderedDict[ProcessId, list]" = OrderedDict()
        self._undelivered_count = 0

    def set_peers(self, addresses: Dict[ProcessId, Tuple[str, int]]) -> None:
        """Tell the node where its fellow servers listen.

        Required for broadcast-based protocols (``spec.peer_links``):
        envelopes the protocol addresses to these ids are delivered over
        lazily-dialed outbound links instead of being dropped.  Peer
        senders are also exempted from per-client rate limiting --
        server-to-server echo storms are the protocol, not abuse.
        """
        self._peers = {pid: addr for pid, addr in addresses.items()
                       if pid != self.server_id}

    @property
    def stats(self) -> Dict[str, int]:
        """Compatibility view: the registry counters as a plain mapping."""
        return {name: int(counter.value)
                for name, counter in self._counters.items()}

    def _restore_from_snapshot(self) -> None:
        if self.snapshot_path is None or not os.path.exists(self.snapshot_path):
            return
        from repro.core.persistence import restore_server
        with open(self.snapshot_path, "rb") as fh:
            restored = restore_server(
                fh.read(), codec=getattr(self.protocol, "codec", None))
        # Keep the live object (the cluster may hold references); adopt the
        # durable history in place.
        self.protocol.history = restored.history
        logger.info("server %s restored %d history entries from %s",
                    self.server_id, len(restored.history), self.snapshot_path)

    async def _checkpoint(self) -> None:
        """Write a snapshot without stalling the event loop.

        Serialization happens on the loop (a consistent view of the
        protocol state between awaits); the file write and atomic rename
        are offloaded to a thread.  Writes are ordered by a lock, and a
        write is skipped when a newer snapshot already reached disk while
        it waited (coalescing under bursts of mutations).
        """
        if self.snapshot_path is None:
            return
        from repro.core.persistence import snapshot_server
        data = snapshot_server(self.protocol)
        self._checkpoint_seq += 1
        seq = self._checkpoint_seq
        if self._checkpoint_lock is None:
            self._checkpoint_lock = asyncio.Lock()
        async with self._checkpoint_lock:
            if seq <= self._checkpoint_written:
                return  # a newer snapshot is already durable
            await asyncio.to_thread(self._write_snapshot, data)
            self._checkpoint_written = seq

    def _write_snapshot(self, data: bytes) -> None:
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(data)
        os.replace(tmp_path, self.snapshot_path)  # atomic on POSIX
        self._last_snapshot_at = time.monotonic()

    def snapshot_age(self) -> float:
        """Seconds since the last durable checkpoint (-1 when none)."""
        if self._last_snapshot_at is None:
            return -1.0
        return time.monotonic() - self._last_snapshot_at

    async def start(self) -> None:
        """Bind the listener; ``self.port`` is filled in when it was 0."""
        self._restore_from_snapshot()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("server %s listening on %s:%d", self.server_id, self.host, self.port)

    async def stop(self) -> None:
        """Close the listener and every live connection (crash semantics)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()
        for link in list(self._peer_links.values()):
            await link.close()
        self._peer_links.clear()
        self._parties.clear()
        self._undelivered.clear()
        if self._checkpoint_lock is not None:
            # Let an in-flight snapshot write finish so a restart does not
            # race a stale file replacing a newer one.
            async with self._checkpoint_lock:
                pass

    @property
    def address(self) -> tuple:
        """``(host, port)`` of the bound listener."""
        return (self.host, self.port)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if (self.max_connections is not None
                and len(self._conn_writers) >= self.max_connections):
            # Shed the connection outright: the dialling client's backoff
            # spreads the retry, which is the point of the cap.
            self._counters["connections_refused"].inc()
            self._log.warning(
                "conn-cap", "server %s refusing connection (cap %d reached)",
                self.server_id, self.max_connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            return
        self._conn_writers.add(writer)
        self._connections_gauge.set(len(self._conn_writers))
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # Listener shut down while this connection was idle; wind down
            # quietly rather than spamming the event loop's exception hook.
            pass
        finally:
            self._conn_writers.discard(writer)
            self._connections_gauge.set(len(self._conn_writers))
            for pid, w in list(self._parties.items()):
                if w is writer:
                    del self._parties[pid]
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError):  # pragma: no cover - teardown races
                pass

    def _note_repeat(self, sender: ProcessId, message: Any) -> bool:
        """Count frames the node has already seen (client re-sends).

        Returns whether this frame was a repeat, so the flight recorder
        can tag re-served operations in stitched timelines.
        """
        key = (sender, message.op_id, type(message))
        recent = self._recent_frames
        if key in recent:
            recent.move_to_end(key)
            self._c_frames_retried.inc()
            return True
        recent[key] = None
        if len(recent) > RETRY_WINDOW:
            recent.popitem(last=False)
        return False

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """Serve one connection: batch-decode frames, batch-flush replies.

        One read syscall may deliver several consecutive frames (a
        multiplexed client coalesces its writes into bursts), and on the
        v2 wire one *frame* may carry a whole batch-sealed burst of
        messages.  Every message in the chunk is processed back to back;
        the chunk's replies go out as one batch-sealed frame (v2 -- a
        single HMAC covers them all) or one per-reply frame burst (v1),
        under a single write and a single ``drain()``.
        """
        loop = asyncio.get_running_loop()
        assembler = FrameAssembler()
        while True:
            try:
                data = await reader.read(READ_CHUNK)
            except (ConnectionResetError, OSError):
                return
            if not data:
                return
            try:
                frames = assembler.feed(data)
            except ProtocolError as exc:
                # Oversized frame: past this point the stream cannot be
                # re-synchronized, so the connection is dropped.
                self._counters["frames_bad"].inc()
                self._log.warning("bad-frame", "server %s closing "
                                  "connection: %s", self.server_id, exc)
                return
            # One chunk-receipt instant for every frame in the burst:
            # a frame's queue wait is the time it spent behind earlier
            # messages of the same chunk before its handler ran.
            received = loop.time()
            replies: list = []
            needs_checkpoint = False
            for frame in frames:
                self._c_wire_frames.inc()
                if self._serve_frame(frame, replies, loop, received, writer):
                    needs_checkpoint = True
            if needs_checkpoint:
                # One durable snapshot per chunk (the checkpoint path
                # coalesces anyway), taken *before* any ack goes out so
                # acknowledged state is always recoverable.
                await self._checkpoint()
            if replies:
                if len(replies) > 1:
                    self._counters["reply_batches"].inc()
                write_frames(writer, self.auth.seal_frames(
                    self.server_id, replies, batch=self.wire == "v2"))
                try:
                    await writer.drain()
                except (ConnectionResetError, OSError):
                    return

    def _serve_frame(self, frame, replies: list,
                     loop: asyncio.AbstractEventLoop,
                     received: Optional[float] = None,
                     writer: Optional[asyncio.StreamWriter] = None) -> bool:
        """Verify one wire frame and serve every message it carries.

        Encoded reply payloads are appended to ``replies``; the
        connection loop seals and flushes them once per decoded chunk.
        Returns whether any message mutated durable state (the caller
        checkpoints before flushing the acks).
        """
        try:
            sender, payloads = self.auth.open_any(frame)
        except (AuthenticationError, ProtocolError) as exc:
            self._c_frames_bad.inc()
            self._log.warning("bad-frame", "server %s dropping bad "
                              "frame: %s", self.server_id, exc)
            return False
        if writer is not None:
            # Remember where this authenticated party lives so pushed
            # envelopes (relays to waiting readers, acks whose trigger
            # arrived via a peer first) can reach it, and flush anything
            # parked for it while it had no route.
            self._parties[sender] = writer
            parked = self._undelivered.pop(sender, None)
            if parked:
                self._undelivered_count -= len(parked)
                replies.extend(parked)
        needs_checkpoint = False
        for payload in payloads:
            try:
                message = self._decode(payload)
            except ProtocolError as exc:
                self._c_frames_bad.inc()
                self._log.warning("bad-frame", "server %s dropping bad "
                                  "payload: %s", self.server_id, exc)
                continue
            if self._serve_message(sender, message, replies, loop, received):
                needs_checkpoint = True
        return needs_checkpoint

    def _serve_message(self, sender: ProcessId, message: Any,
                       replies: list,
                       loop: asyncio.AbstractEventLoop,
                       received: Optional[float] = None) -> bool:
        """Run one verified message through the node/protocol layers.

        Returns whether the message changed the protocol's durable
        history (i.e. a checkpoint is due).
        """
        self._c_frames.inc()
        if isinstance(message, HealthPing):
            # Answered by the node, not the protocol, and exempt from
            # rate limiting: readiness probes must work under load.
            self._counters["health_pings"].inc()
            # RegisterTable occupancy, when the protocol is a sharded
            # table (duck-typed: single-register protocols report -1).
            resident = getattr(self.protocol, "resident_keys", None)
            archived = getattr(self.protocol, "archived_keys", None)
            rehydrations = -1
            if resident is not None:
                rehydrations = int(self.registry.counter_value(
                    "table_rehydrations_total", node=str(self.server_id)))
            ack = HealthAck(
                op_id=message.op_id, node_id=str(self.server_id),
                history_len=len(getattr(self.protocol, "history", ())),
                frames=int(self._counters["frames"].value),
                throttled=int(self._counters["frames_throttled"].value),
                snapshot_age=self.snapshot_age(),
                keys_resident=-1 if resident is None else len(resident),
                keys_archived=-1 if archived is None else len(archived),
                rehydrations=rehydrations,
            )
            replies.append(self._encode(ack))
            return False
        if isinstance(message, StatsPing):
            # The scrape path: same exemption as health pings, so
            # metrics stay readable exactly when the node is drowning.
            self._counters["stats_pings"].inc()
            ack = StatsAck(op_id=message.op_id,
                           node_id=str(self.server_id),
                           metrics=self.registry.snapshot())
            replies.append(self._encode(ack))
            return False
        if isinstance(message, TraceDump):
            # Flight-recorder scrape: node-level like the pings above,
            # so stitched timelines stay reachable under protocol load.
            self._counters["trace_dumps"].inc()
            fl = self.flight
            ack = TraceAck(
                op_id=message.op_id, node_id=str(self.server_id),
                records=(fl.dump(message.target_op, message.limit)
                         if fl is not None else []),
                total=fl.total if fl is not None else 0,
            )
            replies.append(self._encode(ack))
            return False
        fl = self.flight
        if (self._buckets is not None and sender not in self._peers
                and not self._buckets.allow(sender)):
            self._counters["frames_throttled"].inc()
            throttle = Throttled(
                op_id=getattr(message, "op_id", 0),
                retry_after=self._buckets.retry_after(sender),
                dropped=type(message).__name__,
            )
            replies.append(self._encode(throttle))
            op_id = getattr(message, "op_id", None)
            if fl is not None and fl.wants(op_id):
                now = loop.time()
                fl.record({
                    "op_id": op_id, "node": str(self.server_id),
                    "phase": self._frame_phase(message),
                    "recv": received if received is not None else now,
                    "queue_wait": (now - received
                                   if received is not None else 0.0),
                    "service": 0.0, "verdict": "throttled",
                    "repeat": False,
                })
            return False
        repeated = self._note_repeat(sender, message)
        started = loop.time()
        history = getattr(self.protocol, "history", None)
        history_before = -1 if history is None else len(history)
        # Self-addressed envelopes (a broadcast server is one of its own
        # peers) loop back through the protocol right here, so counting
        # the node's own witness/echo never takes a network hop.
        pending = deque(((sender, message),))
        while pending:
            src, msg = pending.popleft()
            envelopes = self.protocol.handle(src, msg)
            if self.behavior is not None:
                envelopes = self.behavior.on_message(
                    self.protocol, src, msg, envelopes
                )
            self._route_envelopes(sender, envelopes, replies, pending)
        mutated = (history is not None
                   and len(self.protocol.history) != history_before)
        # Key the histogram cache by the *inner* class for namespaced
        # wrappers: the phase depends only on the inner message type, so
        # keyed traffic caches one entry per protocol message class
        # instead of re-resolving the phase on every frame.
        inner = getattr(message, "inner", None)
        cls = type(message) if inner is None else type(inner)
        hist = self._hist_by_cls.get(cls)
        if hist is None:
            phase = self._frame_phase(message)
            hist = self._phase_hists.get(phase)
            if hist is None:
                hist = self._phase_hists[phase] = self.registry.histogram(
                    "node_phase_seconds", node=str(self.server_id),
                    phase=phase)
            self._hist_by_cls[cls] = hist
        ended = loop.time()
        hist.observe(ended - started)
        if fl is not None:
            op_id = getattr(message, "op_id", None)
            if fl.wants(op_id):
                fl.record({
                    "op_id": op_id, "node": str(self.server_id),
                    "phase": self._frame_phase(message),
                    "recv": received if received is not None else started,
                    "queue_wait": (started - received
                                   if received is not None else 0.0),
                    "service": ended - started, "verdict": "served",
                    "repeat": repeated,
                })
        return mutated

    def _route_envelopes(self, origin: ProcessId, envelopes, replies: list,
                         pending: deque) -> None:
        """Send each ``(dest, message)`` envelope down its route.

        ``origin`` is the party whose frame is being served.  Order
        matters: a peer destination always takes the mesh link -- even
        when the peer *is* the origin, because peers never read the
        reply side of their outbound connections -- while the origin's
        own replies ride the connection's reply batch for free.
        """
        encode = self._encode
        for dest, reply in envelopes:
            if dest == self.server_id:
                pending.append((self.server_id, reply))
            elif dest in self._peers:
                link = self._peer_links.get(dest)
                if link is None:
                    link = self._peer_links[dest] = _PeerLink(self, dest)
                link.send(encode(reply))
            elif dest == origin:
                replies.append(encode(reply))
            else:
                self._push_to_party(dest, encode(reply))

    def _push_to_party(self, dest: ProcessId, payload: bytes) -> None:
        """Deliver a server-initiated envelope to a non-peer party.

        A live inbound connection gets the frame immediately; otherwise
        the payload is parked until that party next sends us anything
        (the reply batch flushes the stash).  This covers the race where
        a write validates via peer echoes before the writer's own frame
        reaches this server -- the ack would otherwise evaporate.
        """
        writer = self._parties.get(dest)
        if writer is not None and not writer.is_closing():
            try:
                write_frames(writer, self.auth.seal_frames(
                    self.server_id, [payload], batch=self.wire == "v2"))
                return
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass
        if not self._peers:
            # No mesh configured: a stray destination is a protocol bug,
            # same as before peer routing existed.
            self._log.warning(
                "misrouted-envelope",
                "server %s dropping envelope to %s (no route)",
                self.server_id, dest,
            )
            return
        stash = self._undelivered.get(dest)
        if stash is None:
            stash = self._undelivered[dest] = []
        stash.append(payload)
        self._undelivered.move_to_end(dest)
        self._undelivered_count += 1
        while self._undelivered_count > UNDELIVERED_LIMIT and self._undelivered:
            _, dropped = self._undelivered.popitem(last=False)
            self._undelivered_count -= len(dropped)

    def _frame_phase(self, message: Any) -> str:
        """Protocol phase an inbound frame belongs to (for histograms)."""
        inner = getattr(message, "inner", message)  # unwrap namespacing
        name = type(inner).__name__
        return PHASE_BY_MESSAGE.get(name, name)
