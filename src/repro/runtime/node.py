"""A TCP server node hosting one register-server state machine."""

from __future__ import annotations

import asyncio
import logging
import os
from collections import Counter
from typing import Any, Optional, Set

from repro.core.messages import HealthAck, HealthPing, Throttled
from repro.errors import AuthenticationError, ProtocolError
from repro.runtime.limits import PerClientBuckets
from repro.transport.auth import Authenticator
from repro.transport.codec import (
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.types import ProcessId

logger = logging.getLogger(__name__)


class RegisterServerNode:
    """Host a server protocol (``handle(sender, msg) -> envelopes``) on TCP.

    Each inbound connection carries sealed frames; replies addressed to the
    requesting client go back over the same connection.  Envelopes addressed
    to anyone else are dropped with a warning -- the runtime only supports
    client-to-server protocols (see package docstring).

    A ``behavior`` may be supplied to make the node Byzantine: it receives
    the same hooks as in the simulator.

    The node is restartable: :meth:`stop` closes the listener *and* every
    live connection (a crash severs established links too), and a
    subsequent :meth:`start` rebinds the same port and restores state from
    the snapshot, which is how the chaos nemesis models crash-recovery.

    Flow control (both optional): ``max_connections`` caps concurrent
    connections -- excess dials are closed immediately, pushing the
    client into its reconnect backoff -- and ``rate_limit`` applies a
    per-authenticated-client token bucket (``rate_limit`` frames/second,
    ``rate_burst`` tokens deep); frames over budget are shed with a
    :class:`~repro.core.messages.Throttled` reply instead of being
    buffered.  :class:`~repro.core.messages.HealthPing` frames are
    answered by the node itself (before the protocol, exempt from rate
    limiting) so supervisors can probe readiness of any algorithm.
    """

    def __init__(self, server_id: ProcessId, protocol: Any,
                 authenticator: Authenticator, host: str = "127.0.0.1",
                 port: int = 0, behavior: Optional[Any] = None,
                 snapshot_path: Optional[str] = None,
                 max_connections: Optional[int] = None,
                 rate_limit: Optional[float] = None,
                 rate_burst: Optional[float] = None) -> None:
        self.server_id = server_id
        self.protocol = protocol
        self.auth = authenticator
        self.host = host
        self.port = port
        self.behavior = behavior
        #: When set, the node checkpoints its state here after every
        #: mutation and restores from it on start (crash recovery).
        self.snapshot_path = snapshot_path
        self.max_connections = max_connections
        self.rate_limit = rate_limit
        self._buckets = (PerClientBuckets(rate_limit, rate_burst)
                         if rate_limit is not None else None)
        #: Flow-control counters: ``connections_refused``,
        #: ``frames_throttled``, ``frames``, ``health_pings``.
        self.stats: Counter = Counter()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        self._checkpoint_lock: Optional[asyncio.Lock] = None
        self._checkpoint_seq = 0
        self._checkpoint_written = 0

    def _restore_from_snapshot(self) -> None:
        if self.snapshot_path is None or not os.path.exists(self.snapshot_path):
            return
        from repro.core.persistence import restore_server
        with open(self.snapshot_path, "rb") as fh:
            restored = restore_server(
                fh.read(), codec=getattr(self.protocol, "codec", None))
        # Keep the live object (the cluster may hold references); adopt the
        # durable history in place.
        self.protocol.history = restored.history
        logger.info("server %s restored %d history entries from %s",
                    self.server_id, len(restored.history), self.snapshot_path)

    async def _checkpoint(self) -> None:
        """Write a snapshot without stalling the event loop.

        Serialization happens on the loop (a consistent view of the
        protocol state between awaits); the file write and atomic rename
        are offloaded to a thread.  Writes are ordered by a lock, and a
        write is skipped when a newer snapshot already reached disk while
        it waited (coalescing under bursts of mutations).
        """
        if self.snapshot_path is None:
            return
        from repro.core.persistence import snapshot_server
        data = snapshot_server(self.protocol)
        self._checkpoint_seq += 1
        seq = self._checkpoint_seq
        if self._checkpoint_lock is None:
            self._checkpoint_lock = asyncio.Lock()
        async with self._checkpoint_lock:
            if seq <= self._checkpoint_written:
                return  # a newer snapshot is already durable
            await asyncio.to_thread(self._write_snapshot, data)
            self._checkpoint_written = seq

    def _write_snapshot(self, data: bytes) -> None:
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(data)
        os.replace(tmp_path, self.snapshot_path)  # atomic on POSIX

    async def start(self) -> None:
        """Bind the listener; ``self.port`` is filled in when it was 0."""
        self._restore_from_snapshot()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("server %s listening on %s:%d", self.server_id, self.host, self.port)

    async def stop(self) -> None:
        """Close the listener and every live connection (crash semantics)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()
        if self._checkpoint_lock is not None:
            # Let an in-flight snapshot write finish so a restart does not
            # race a stale file replacing a newer one.
            async with self._checkpoint_lock:
                pass

    @property
    def address(self) -> tuple:
        """``(host, port)`` of the bound listener."""
        return (self.host, self.port)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if (self.max_connections is not None
                and len(self._conn_writers) >= self.max_connections):
            # Shed the connection outright: the dialling client's backoff
            # spreads the retry, which is the point of the cap.
            self.stats["connections_refused"] += 1
            logger.warning("server %s refusing connection (cap %d reached)",
                           self.server_id, self.max_connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            return
        self._conn_writers.add(writer)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # Listener shut down while this connection was idle; wind down
            # quietly rather than spamming the event loop's exception hook.
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError):  # pragma: no cover - teardown races
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                frame = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            try:
                sender, payload = self.auth.open(frame)
                message = decode_message(payload)
            except (AuthenticationError, ProtocolError) as exc:
                logger.warning("server %s dropping bad frame: %s",
                               self.server_id, exc)
                continue
            self.stats["frames"] += 1
            if isinstance(message, HealthPing):
                # Answered by the node, not the protocol, and exempt from
                # rate limiting: readiness probes must work under load.
                self.stats["health_pings"] += 1
                ack = HealthAck(
                    op_id=message.op_id, node_id=str(self.server_id),
                    history_len=len(getattr(self.protocol, "history", ())),
                )
                write_frame(writer, self.auth.seal(
                    self.server_id, encode_message(ack)))
                await writer.drain()
                continue
            if self._buckets is not None and not self._buckets.allow(sender):
                self.stats["frames_throttled"] += 1
                throttle = Throttled(
                    op_id=getattr(message, "op_id", 0),
                    retry_after=self._buckets.retry_after(sender),
                    dropped=type(message).__name__,
                )
                write_frame(writer, self.auth.seal(
                    self.server_id, encode_message(throttle)))
                await writer.drain()
                continue
            history_before = len(getattr(self.protocol, "history", ()))
            replies = self.protocol.handle(sender, message)
            if self.behavior is not None:
                replies = self.behavior.on_message(
                    self.protocol, sender, message, replies
                )
            if len(getattr(self.protocol, "history", ())) != history_before:
                await self._checkpoint()
            for dest, reply in replies:
                if dest != sender:
                    logger.warning(
                        "server %s dropping envelope to %s (only "
                        "client-to-server replies are routable)",
                        self.server_id, dest,
                    )
                    continue
                sealed = self.auth.seal(self.server_id, encode_message(reply))
                write_frame(writer, sealed)
            await writer.drain()
