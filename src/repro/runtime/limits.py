"""Server-side flow control primitives for the TCP runtime.

A node accepting unbounded connections and frames is an availability
hazard: a reconnect storm (many clients, small backoff) or one
misbehaving client can exhaust file descriptors and buffer memory long
before the protocol itself is stressed.  :class:`TokenBucket` implements
the classic refill-at-rate/spend-per-frame limiter the node applies per
authenticated client, and :class:`ConnectionGate` counts live
connections against a cap.

Both are deliberately tiny and allocation-free on the hot path: the
bucket stores two floats and refills lazily from the event-loop clock,
so a node with thousands of clients pays one multiply-add per frame.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class TokenBucket:
    """Refill ``rate`` tokens/second up to ``burst``; spend one per frame.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def allow(self) -> bool:
        """Spend one token if available; ``False`` means throttle."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one token will be available (0 if one already is)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class PerClientBuckets:
    """Lazily-created :class:`TokenBucket` per authenticated client id.

    The map is bounded: when more than ``max_clients`` distinct senders
    have buckets, idle full buckets are evicted (a full bucket carries no
    state worth keeping -- recreating it is equivalent).
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 max_clients: int = 4096,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(2.0 * rate, 1.0)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket_for(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                self._evict_idle()
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client_id] = bucket
        return bucket

    def _evict_idle(self) -> None:
        for cid in [cid for cid, b in self._buckets.items()
                    if b.retry_after() == 0.0 and b._tokens >= b.burst]:
            del self._buckets[cid]

    def allow(self, client_id: str) -> bool:
        return self.bucket_for(client_id).allow()

    def retry_after(self, client_id: str) -> float:
        return self.bucket_for(client_id).retry_after()
