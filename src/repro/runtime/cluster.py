"""One-process local deployments for examples, tests and benchmark E10."""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple, Union

from repro.baselines.abd import ABDServer
from repro.byzantine.behaviors import Behavior, make_behavior
from repro.core.bcsr import BCSRServer, make_codec
from repro.core.bsr import BSRServer
from repro.core.namespace import NamespacedServer
from repro.core.quorum import (
    abd_min_servers,
    bcsr_min_servers,
    bsr_min_servers,
)
from repro.core.regular import RegularBSRServer
from repro.errors import ConfigurationError
from repro.runtime.client import CLIENT_ALGORITHMS, AsyncRegisterClient
from repro.runtime.node import RegisterServerNode
from repro.transport.auth import Authenticator, KeyChain
from repro.types import ProcessId, server_id

_MIN_SERVERS = {
    "bsr": bsr_min_servers,
    "bsr-history": bsr_min_servers,
    "bsr-2round": bsr_min_servers,
    "bcsr": bcsr_min_servers,
    "abd": abd_min_servers,
}


class LocalCluster:
    """Spin up ``n`` register server nodes on localhost.

    Usage::

        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        client = cluster.client("w000")
        await client.connect()
        await client.write(b"hello")
        ...
        await cluster.stop()
    """

    def __init__(self, algorithm: str = "bsr", f: int = 1,
                 n: Optional[int] = None, host: str = "127.0.0.1",
                 secret: bytes = b"local-cluster-secret",
                 byzantine: Optional[Dict[Union[int, ProcessId],
                                          Union[str, Behavior]]] = None,
                 initial_value: bytes = b"",
                 namespaced: bool = False,
                 snapshot_dir: Optional[str] = None) -> None:
        if algorithm not in CLIENT_ALGORITHMS:
            raise ConfigurationError(
                f"algorithm {algorithm!r} not supported by the asyncio "
                f"runtime; choose from {CLIENT_ALGORITHMS}"
            )
        self.algorithm = algorithm
        self.f = f
        self.n = n if n is not None else _MIN_SERVERS[algorithm](f)
        if self.n < _MIN_SERVERS[algorithm](f):
            raise ConfigurationError(
                f"{algorithm} requires n >= {_MIN_SERVERS[algorithm](f)}, got {self.n}"
            )
        self.host = host
        self.secret = secret
        self.initial_value = initial_value
        self.server_ids = [server_id(i) for i in range(self.n)]
        self._behaviors: Dict[ProcessId, Behavior] = {}
        for key, value in (byzantine or {}).items():
            pid = server_id(key) if isinstance(key, int) else key
            behavior = make_behavior(value) if isinstance(value, str) else value
            self._behaviors[pid] = behavior
        self.namespaced = namespaced
        self.snapshot_dir = snapshot_dir
        self.nodes: Dict[ProcessId, RegisterServerNode] = {}
        self._codec = make_codec(self.n, f) if algorithm == "bcsr" else None
        self._clients: list = []

    def _keychain_for(self, client_ids) -> KeyChain:
        return KeyChain.from_secret(self.secret, list(self.server_ids) + list(client_ids))

    def _make_protocol(self, pid: ProcessId, index: int) -> Any:
        if self.algorithm == "bsr":
            return BSRServer(pid, initial_value=self.initial_value)
        if self.algorithm in ("bsr-history", "bsr-2round"):
            return RegularBSRServer(pid, initial_value=self.initial_value)
        if self.algorithm == "bcsr":
            return BCSRServer(pid, index, self._codec,
                              initial_value=self.initial_value)
        return ABDServer(pid, initial_value=self.initial_value)

    async def start(self) -> None:
        """Start every server node on an ephemeral port."""
        auth = Authenticator(self._keychain_for([]))
        for index, pid in enumerate(self.server_ids):
            if self.namespaced:
                # The namespace wrapper applies the behaviour per hosted
                # register, so the node itself stays behaviour-free.
                protocol = NamespacedServer(
                    pid,
                    factory=lambda name, pid=pid, index=index:
                        self._make_protocol(pid, index),
                    behavior=self._behaviors.get(pid),
                )
                node = RegisterServerNode(pid, protocol, auth,
                                          host=self.host, port=0)
            else:
                snapshot_path = None
                if self.snapshot_dir is not None:
                    import os
                    os.makedirs(self.snapshot_dir, exist_ok=True)
                    snapshot_path = os.path.join(self.snapshot_dir,
                                                 f"{pid}.snapshot")
                node = RegisterServerNode(
                    pid, self._make_protocol(pid, index), auth, host=self.host,
                    port=0, behavior=self._behaviors.get(pid),
                    snapshot_path=snapshot_path,
                )
            await node.start()
            self.nodes[pid] = node

    async def stop(self) -> None:
        """Close all clients created via :meth:`client`, then all nodes."""
        for client in self._clients:
            await client.close()
        self._clients.clear()
        for node in self.nodes.values():
            await node.stop()
        self.nodes.clear()

    @property
    def addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """Server id -> (host, port) of every running node."""
        return {pid: node.address for pid, node in self.nodes.items()}

    def client(self, client_id: ProcessId, timeout: float = 30.0) -> AsyncRegisterClient:
        """Create a client wired to this cluster (closed by :meth:`stop`)."""
        keychain = self._keychain_for([client_id])
        client = AsyncRegisterClient(
            client_id, self.addresses, self.f, Authenticator(keychain),
            algorithm=self.algorithm, timeout=timeout,
            initial_value=self.initial_value, namespaced=self.namespaced,
        )
        self._clients.append(client)
        return client
