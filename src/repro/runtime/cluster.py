"""One-process local deployments for examples, tests and benchmark E10."""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple, Union

from repro.byzantine.behaviors import Behavior, make_behavior
from repro.chaos.faults import FaultPlan
from repro.chaos.proxy import ChaosProxy
from repro.core.namespace import NamespacedServer
from repro.errors import ConfigurationError
from repro.obs import MetricRegistry
from repro.protocols import ServerContext, get_spec, runtime_names
from repro.runtime.client import AsyncRegisterClient
from repro.runtime.node import RegisterServerNode
from repro.sharding import KeyspaceConfig, RegisterTable
from repro.transport.auth import Authenticator, KeyChain
from repro.types import ProcessId, server_id


class LocalCluster:
    """Spin up ``n`` register server nodes on localhost.

    With ``chaos=True`` every node sits behind a
    :class:`~repro.chaos.proxy.ChaosProxy` applying a seeded
    :class:`~repro.chaos.faults.FaultPlan` (link label = the server id),
    and :meth:`crash` / :meth:`restart` model crash-recovery: a crash
    closes the listener and every live connection, a restart rebuilds the
    protocol from scratch and restores it from its snapshot.

    Usage::

        cluster = LocalCluster("bsr", f=1)
        await cluster.start()
        client = cluster.client("w000")
        await client.connect()
        await client.write(b"hello")
        ...
        await cluster.stop()
    """

    def __init__(self, algorithm: str = "bsr", f: int = 1,
                 n: Optional[int] = None, host: str = "127.0.0.1",
                 secret: bytes = b"local-cluster-secret",
                 byzantine: Optional[Dict[Union[int, ProcessId],
                                          Union[str, Behavior]]] = None,
                 initial_value: bytes = b"",
                 namespaced: bool = False,
                 snapshot_dir: Optional[str] = None,
                 chaos: bool = False, chaos_seed: int = 0,
                 chaos_plan: Optional[FaultPlan] = None,
                 max_history: Optional[int] = None,
                 max_connections: Optional[int] = None,
                 rate_limit: Optional[float] = None,
                 rate_burst: Optional[float] = None,
                 registry: Optional[MetricRegistry] = None,
                 wire: str = "v2",
                 keyspace: Optional[KeyspaceConfig] = None,
                 flight_sample: int = 64,
                 flight_capacity: int = 1024) -> None:
        spec = get_spec(algorithm)
        if not spec.runtime_ok:
            raise ConfigurationError(
                f"algorithm {algorithm!r} not supported by the asyncio "
                f"runtime; choose from {runtime_names()}"
            )
        self.spec = spec
        self.algorithm = algorithm
        self.f = f
        self.n = n if n is not None else spec.min_servers(f)
        spec.validate_config(self.n, f)
        self.host = host
        self.secret = secret
        self.initial_value = initial_value
        self.server_ids = [server_id(i) for i in range(self.n)]
        self._behaviors: Dict[ProcessId, Behavior] = {}
        for key, value in (byzantine or {}).items():
            pid = server_id(key) if isinstance(key, int) else key
            behavior = make_behavior(value) if isinstance(value, str) else value
            self._behaviors[pid] = behavior
        #: Sharded keyspace placement (see :mod:`repro.sharding`); implies
        #: namespacing -- nodes host a :class:`RegisterTable` and clients
        #: route each key to its quorum group.
        self.keyspace = keyspace
        self._placement = None
        if keyspace is not None:
            keyspace.validate(algorithm, f, self.n)
            self._placement = keyspace.placement(self.server_ids)
        self.namespaced = namespaced or keyspace is not None
        if self.namespaced and not spec.namespaced_ok:
            raise ConfigurationError(
                f"algorithm {algorithm!r} does not support namespaced "
                "deployments")
        self.snapshot_dir = snapshot_dir
        #: Bound every server's history list (GC; keeps snapshots small).
        self.max_history = max_history
        self.max_connections = max_connections
        self.rate_limit = rate_limit
        self.rate_burst = rate_burst
        #: Wire encoding every node and (by default) client of this
        #: cluster speaks: ``"v2"`` binary or ``"v1"`` JSON.  Decoding
        #: is always version-agnostic, so mixed clusters interoperate.
        self.wire = wire
        #: Flight-recorder settings every node inherits (``sample=0``
        #: turns server-side trace recording off -- the bench baseline).
        self.flight_sample = flight_sample
        self.flight_capacity = flight_capacity
        #: One registry shared by every node, proxy and (by default)
        #: client of this cluster, so a single snapshot shows the whole
        #: deployment.
        self.registry = registry if registry is not None else MetricRegistry()
        self.chaos = chaos or chaos_plan is not None
        self.chaos_plan: Optional[FaultPlan] = (
            (chaos_plan or FaultPlan(chaos_seed)) if self.chaos else None)
        self.nodes: Dict[ProcessId, RegisterServerNode] = {}
        self.proxies: Dict[ProcessId, ChaosProxy] = {}
        self._codec = (None if spec.make_codec is None
                       else spec.make_codec(self.n, f))
        self._clients: list = []

    def _keychain_for(self, client_ids) -> KeyChain:
        return KeyChain.from_secret(self.secret, list(self.server_ids) + list(client_ids))

    def _make_protocol(self, pid: ProcessId,
                       register: Optional[str] = None) -> Any:
        # Sharded keys run the protocol inside their quorum group: the
        # per-key server's peer set (and coded-chunk index) comes from
        # the group, not the fleet.
        if register is not None and self._placement is not None:
            servers = self._placement.servers_for(register)
        else:
            servers = tuple(self.server_ids)
        ctx = ServerContext(
            server_id=pid,
            index=servers.index(pid) if pid in servers else 0,
            servers=tuple(servers),
            f=self.f,
            initial_value=self.initial_value,
            max_history=self.max_history,
            codec=self._codec,
        )
        return self.spec.make_server(ctx)

    def _make_node(self, pid: ProcessId, index: int,
                   auth: Authenticator) -> RegisterServerNode:
        if self.namespaced:
            # The per-register wrapper applies the behaviour per hosted
            # register, so the node itself stays behaviour-free.  A
            # keyspace upgrades the unbounded namespace wrapper to the
            # bounded, validated register table.
            factory = (lambda name, pid=pid:
                       self._make_protocol(pid, register=name))
            if self.keyspace is not None:
                protocol = RegisterTable(
                    pid, factory, behavior=self._behaviors.get(pid),
                    max_resident=self.keyspace.max_resident,
                    max_key_len=self.keyspace.max_key_len,
                    registry=self.registry,
                )
            else:
                protocol = NamespacedServer(
                    pid, factory=factory, behavior=self._behaviors.get(pid))
            return RegisterServerNode(
                pid, protocol, auth, host=self.host, port=0,
                max_connections=self.max_connections,
                rate_limit=self.rate_limit, rate_burst=self.rate_burst,
                registry=self.registry, wire=self.wire,
                flight_sample=self.flight_sample,
                flight_capacity=self.flight_capacity)
        snapshot_path = None
        if self.snapshot_dir is not None and self.spec.snapshot_ok:
            import os
            os.makedirs(self.snapshot_dir, exist_ok=True)
            snapshot_path = os.path.join(self.snapshot_dir, f"{pid}.snapshot")
        return RegisterServerNode(
            pid, self._make_protocol(pid), auth, host=self.host,
            port=0, behavior=self._behaviors.get(pid),
            snapshot_path=snapshot_path,
            max_connections=self.max_connections,
            rate_limit=self.rate_limit, rate_burst=self.rate_burst,
            registry=self.registry, wire=self.wire,
            flight_sample=self.flight_sample,
            flight_capacity=self.flight_capacity,
        )

    async def start(self) -> None:
        """Start every server node (and its chaos proxy, when enabled)."""
        auth = Authenticator(self._keychain_for([]))
        for index, pid in enumerate(self.server_ids):
            node = self._make_node(pid, index, auth)
            await node.start()
            self.nodes[pid] = node
            if self.chaos:
                proxy = ChaosProxy(str(pid), node.address, self.chaos_plan,
                                   host=self.host, registry=self.registry)
                await proxy.start()
                self.proxies[pid] = proxy
        if self.spec.peer_links:
            # The server-to-server mesh dials real node addresses, not
            # the chaos proxies: chaos interposes *client* links, while
            # the broadcast layer's own loss tolerance is exercised by
            # crash/partition faults at the node level.
            peer_addrs = {pid: node.address
                          for pid, node in self.nodes.items()}
            for node in self.nodes.values():
                node.set_peers(peer_addrs)

    async def stop(self) -> None:
        """Close all clients created via :meth:`client`, then all nodes."""
        for client in self._clients:
            await client.close()
        self._clients.clear()
        for proxy in self.proxies.values():
            await proxy.stop()
        self.proxies.clear()
        for node in self.nodes.values():
            await node.stop()
        self.nodes.clear()

    # -- chaos control -------------------------------------------------------
    async def crash(self, pid: ProcessId) -> None:
        """Crash server ``pid``: listener and every live connection die."""
        await self.nodes[pid].stop()
        if pid in self.proxies:
            self.proxies[pid].sever_all()

    async def restart(self, pid: ProcessId) -> None:
        """Restart a crashed server from its snapshot on the same port.

        The in-memory protocol state is rebuilt from scratch -- exactly
        what a process restart loses -- and :meth:`RegisterServerNode.start`
        re-adopts whatever the snapshot preserved.
        """
        node = self.nodes[pid]
        if not self.namespaced:
            node.protocol = self._make_protocol(pid)
        await node.start()

    @property
    def addresses(self) -> Dict[ProcessId, Tuple[str, int]]:
        """Server id -> (host, port) clients should dial.

        With chaos enabled these are the proxy addresses, so every client
        connection is interposable.
        """
        if self.chaos:
            return {pid: proxy.address for pid, proxy in self.proxies.items()}
        return {pid: node.address for pid, node in self.nodes.items()}

    def client(self, client_id: ProcessId, timeout: float = 30.0,
               **client_kwargs) -> AsyncRegisterClient:
        """Create a client wired to this cluster (closed by :meth:`stop`).

        Extra keyword arguments (``reconnect``, ``backoff_base``,
        ``backoff_max``, ``drain_timeout``, ``registry``, ``trace_sink``)
        pass through to :class:`AsyncRegisterClient`; clients default to
        the cluster's shared metric registry.
        """
        client_kwargs.setdefault("registry", self.registry)
        client_kwargs.setdefault("wire", self.wire)
        if self.keyspace is not None:
            client_kwargs.setdefault(
                "placement", self.keyspace.placement(self.server_ids))
        keychain = self._keychain_for([client_id])
        client = AsyncRegisterClient(
            client_id, self.addresses, self.f, Authenticator(keychain),
            algorithm=self.algorithm, timeout=timeout,
            initial_value=self.initial_value, namespaced=self.namespaced,
            **client_kwargs,
        )
        self._clients.append(client)
        return client
