"""Event-loop selection: optional uvloop with graceful fallback.

The hot-path budget (:mod:`benchmarks.bench_e19_hotpath`) is dominated
by event-loop overhead once encoding and sealing are batched, and
uvloop's libuv-based loop cuts a large slice of it.  uvloop is an
*optional* dependency though -- many deployment images (including the
test container) ship without it -- so everything here degrades to the
stdlib loop silently unless the caller insisted.

Usage::

    from repro.runtime.loop import install_uvloop, run

    install_uvloop()          # best effort, returns whether it took
    run(main())               # asyncio.run under whichever policy won
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine, Optional

from repro.errors import ConfigurationError


def uvloop_available() -> bool:
    """Whether the uvloop package can be imported."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def install_uvloop(require: bool = False) -> bool:
    """Install uvloop's event-loop policy if the package is present.

    Returns whether uvloop is now the policy.  With ``require=True`` a
    missing package raises :class:`ConfigurationError` instead of
    falling back -- the CLI uses this when the user passed ``--uvloop``
    explicitly and silent degradation would invalidate a benchmark.
    """
    try:
        import uvloop
    except ImportError:
        if require:
            raise ConfigurationError(
                "uvloop requested but not installed; install uvloop or "
                "drop the --uvloop flag")
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def run(coro: Coroutine[Any, Any, Any], uvloop_mode: Optional[str] = None):
    """``asyncio.run`` under the requested loop policy.

    ``uvloop_mode`` is ``None`` (stdlib loop), ``"auto"`` (uvloop when
    available, stdlib otherwise) or ``"require"`` (uvloop or error).
    """
    if uvloop_mode == "auto":
        install_uvloop(require=False)
    elif uvloop_mode == "require":
        install_uvloop(require=True)
    return asyncio.run(coro)
