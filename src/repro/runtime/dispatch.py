"""Transport-level operation dispatcher: many in-flight ops per client.

The original runtime executed exactly one operation at a time: the
client held a single pending-frame map, a single shared reply queue and
a single tracing span, so a process serving many users needed one client
(and one TCP connection per server) per concurrent operation.  Nothing
in the protocols requires that restriction -- every BSR/BCSR operation
is an idempotent quorum state machine keyed by ``op_id``
(:mod:`repro.core.operation`), so replies, replays and throttle
backoffs can all be scoped to the operation they belong to.

This module supplies the three pieces that make concurrency a property
of the runtime rather than a per-client accident:

* :class:`OpState` -- the per-operation record: encoded payloads
  pending per server (replayed to a healed link), a private reply queue the
  routing layer fills, the operation's tracing span and its retry flag.
* :class:`OpDispatcher` -- the in-flight table.  Incoming replies are
  routed by ``op_id`` to the owning op's queue; replies for finished
  ops (including stale ``Throttled`` frames, which used to bleed into
  the *next* operation's execution) are dropped and counted.  The
  dispatcher also owns the :class:`AdmissionGate`.
* :class:`AdmissionGate` -- a FIFO gate capping concurrently executing
  operations at ``max_inflight``; excess ops queue in arrival order.
* :class:`BatchedConnection` -- per-connection write coalescing: frames
  enqueued during one event-loop tick go out as a single burst
  (:func:`repro.transport.codec.write_frames`) followed by exactly one
  ``drain()``.  When a ``sealer`` is supplied, the burst is *sealed at
  flush time* -- the whole tick's payloads collapse into one batch
  envelope carrying a single HMAC
  (:meth:`repro.transport.auth.Authenticator.seal_frames`) instead of
  one MAC per frame.  Chronically stalled links stop charging the full
  drain timeout to every operation (adaptive backpressure): after
  ``STALL_THRESHOLD`` consecutive drain timeouts the link is probed
  with a short timeout instead, until a drain succeeds again.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.transport.codec import write_frames
from repro.types import ProcessId

#: Consecutive drain timeouts after which a link is considered stalled
#: and stops charging the full ``drain_timeout`` to every flush.
STALL_THRESHOLD = 2

#: Drain timeout (seconds) used to probe a stalled link.
STALL_PROBE_TIMEOUT = 0.05


class OpState:
    """Everything the runtime tracks for one in-flight operation."""

    __slots__ = ("op_id", "operation", "span", "pending", "replies",
                 "retried", "done", "rounds", "deadline")

    def __init__(self, operation: Any) -> None:
        self.op_id: int = operation.op_id
        self.operation = operation
        #: Tracing span; set by the client once the span opens.
        self.span: Optional[Any] = None
        #: ``server -> [(message type name, encoded payload)]`` --
        #: replayed on reconnect, and per-type after a throttle (sealed
        #: at flush time by the connection's burst sealer).
        self.pending: Dict[ProcessId, List[Tuple[str, bytes]]] = {}
        #: Replies routed to this operation by the dispatcher (the
        #: queue-based :meth:`OpDispatcher.route` path; the asyncio
        #: client processes replies inline in its pump instead and
        #: resolves :attr:`done`).
        self.replies: "asyncio.Queue[Tuple[ProcessId, Any]]" = asyncio.Queue()
        #: Whether any frame of this op was re-sent (outcome bookkeeping).
        self.retried = False
        #: Completion future for inline reply processing; set by the
        #: client before the first frame goes out.
        self.done: Optional[asyncio.Future] = None
        #: Last protocol round the client opened a tracing phase for.
        self.rounds = 1
        #: Absolute loop-time deadline (bounds throttle backoffs).
        self.deadline = 0.0

    def pending_frames(self, pid: ProcessId,
                       only_type: Optional[str] = None) -> List[bytes]:
        """Encoded payloads of this op addressed to ``pid``.

        ``only_type`` narrows to one message type (the throttle path:
        the server names the frame it shed).
        """
        return [payload for type_name, payload in self.pending.get(pid, ())
                if only_type is None or type_name == only_type]


class AdmissionGate:
    """FIFO admission control for operation execution.

    At most ``max_inflight`` holders at a time; further :meth:`acquire`
    calls wait in strict arrival order.  ``max_inflight=None`` admits
    everything immediately (the gate still counts holders).
    """

    def __init__(self, max_inflight: Optional[int] = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        self._holders = 0
        self._waiters: "deque[asyncio.Future]" = deque()
        #: Cumulative count of operations that had to queue.
        self.queued_total = 0

    @property
    def inflight(self) -> int:
        """Operations currently admitted."""
        return self._holders

    @property
    def queued(self) -> int:
        """Operations currently waiting for admission."""
        return len(self._waiters)

    async def acquire(self) -> bool:
        """Admit the caller; returns whether it had to queue."""
        if self.max_inflight is None or (
                self._holders < self.max_inflight and not self._waiters):
            self._holders += 1
            return False
        self.queued_total += 1
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        try:
            await fut
        except asyncio.CancelledError:
            if fut.done() and not fut.cancelled():
                # The slot was granted concurrently with the
                # cancellation; pass it to the next waiter.
                self.release()
            else:
                try:
                    self._waiters.remove(fut)
                except ValueError:
                    pass
            raise
        return True

    def release(self) -> None:
        """Give up a slot, waking the oldest waiter (FIFO)."""
        self._holders -= 1
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                self._holders += 1
                fut.set_result(None)
                return


class OpDispatcher:
    """The in-flight operation table and its reply router."""

    def __init__(self, max_inflight: Optional[int] = None) -> None:
        self.gate = AdmissionGate(max_inflight)
        self._ops: Dict[int, OpState] = {}

    # -- lifecycle ---------------------------------------------------------
    def register(self, operation: Any) -> OpState:
        """Create and table the per-op record for ``operation``."""
        state = OpState(operation)
        self._ops[state.op_id] = state
        return state

    def unregister(self, state: OpState) -> None:
        """Drop a finished operation; later replies for it are stale."""
        self._ops.pop(state.op_id, None)

    @property
    def inflight(self) -> int:
        """Number of registered (executing) operations."""
        return len(self._ops)

    def states(self) -> List[OpState]:
        """The in-flight records (snapshot)."""
        return list(self._ops.values())

    def lookup(self, op_id: Any) -> Optional[OpState]:
        """The in-flight record owning ``op_id``, if any."""
        return self._ops.get(op_id)

    # -- routing -----------------------------------------------------------
    def route(self, sender: ProcessId, message: Any) -> bool:
        """Deliver a verified reply to the operation that owns it.

        Returns ``False`` for replies whose ``op_id`` matches no
        in-flight operation -- late replies and ``Throttled`` frames of
        already-finished ops.  Dropping them here is what fixes the
        stale-reply bleed-through of the shared-queue design, where a
        leftover ``Throttled`` triggered a backoff sleep and a frame
        replay for whichever operation ran *next*.
        """
        state = self._ops.get(getattr(message, "op_id", None))
        if state is None:
            return False
        state.replies.put_nowait((sender, message))
        return True


class BatchedConnection:
    """Per-connection write coalescing with adaptive drain backpressure.

    :meth:`send` enqueues one frame and returns a future that resolves
    when the frame's burst has been flushed (best-effort: write
    failures resolve the future too -- the op waits for quorum replies,
    not per-link delivery; the connection owner is told via
    ``on_failure`` so the frames get replayed on reconnect).  All frames
    enqueued before the flusher task runs -- i.e. during the same
    event-loop tick, across every in-flight operation -- are written as
    one burst followed by exactly one ``drain()``.

    ``sealer`` (optional) maps the burst's raw payloads to wire frames
    at flush time -- the batched-HMAC hook: a whole tick's payloads are
    sealed under one MAC (see
    :meth:`repro.transport.auth.Authenticator.seal_frames`).  Without a
    sealer, enqueued frames are written as-is (the caller pre-sealed
    them).
    """

    __slots__ = ("pid", "_writer", "_drain_timeout", "_on_drain_timeout",
                 "_on_failure", "_on_batch", "_sealer", "_queue", "_burst",
                 "_task", "_stalled", "_closed")

    def __init__(self, pid: ProcessId, writer: asyncio.StreamWriter,
                 drain_timeout: float,
                 on_drain_timeout: Callable[[], Any],
                 on_failure: Callable[[ProcessId], Any],
                 on_batch: Optional[Callable[[int], Any]] = None,
                 sealer: Optional[Callable[[List[bytes]],
                                           List[bytes]]] = None) -> None:
        self.pid = pid
        self._writer = writer
        self._drain_timeout = drain_timeout
        self._on_drain_timeout = on_drain_timeout
        self._on_failure = on_failure
        self._on_batch = on_batch
        self._sealer = sealer
        self._queue: List[bytes] = []
        #: One shared future per burst: every frame enqueued in the same
        #: tick resolves together (they flush together), so send() hands
        #: out the same future instead of allocating one per frame.
        self._burst: Optional[asyncio.Future] = None
        self._task: Optional[asyncio.Task] = None
        #: Consecutive drain timeouts on this link.
        self._stalled = 0
        self._closed = False

    @property
    def stalled(self) -> bool:
        """Whether the link is currently treated as chronically slow."""
        return self._stalled >= STALL_THRESHOLD

    def send(self, frame: bytes) -> "asyncio.Future[None]":
        """Queue one frame; the returned future resolves after the flush.

        ``frame`` is a raw payload when the connection has a ``sealer``
        (sealed per burst at flush time) and a pre-sealed envelope
        otherwise.
        """
        if self._closed:
            # Link already declared dead: the frame stays in the op's
            # pending map and is replayed when the supervisor re-dials.
            fut = asyncio.get_running_loop().create_future()
            fut.set_result(None)
            return fut
        self._queue.append(frame)
        if self._burst is None:
            self._burst = asyncio.get_running_loop().create_future()
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._flush_loop())
        return self._burst

    def close(self) -> None:
        """Stop flushing; resolve every queued waiter."""
        self._closed = True
        burst, self._burst = self._burst, None
        self._queue.clear()
        if burst is not None and not burst.done():
            burst.set_result(None)

    async def _flush_loop(self) -> None:
        while self._queue and not self._closed:
            batch, self._queue = self._queue, []
            burst, self._burst = self._burst, None
            if self._on_batch is not None:
                self._on_batch(len(batch))
            try:
                frames = batch if self._sealer is None else self._sealer(batch)
                write_frames(self._writer, frames)
            except (OSError, ConnectionError, RuntimeError):
                self._fail(burst)
                return
            # Backpressure: one drain per burst.  A link that timed out
            # STALL_THRESHOLD times in a row is only probed -- paying
            # the full timeout on every flush would charge each
            # operation for one chronically slow server.
            timeout = (STALL_PROBE_TIMEOUT if self.stalled
                       else self._drain_timeout)
            try:
                await asyncio.wait_for(self._writer.drain(),
                                       min(timeout, self._drain_timeout))
                self._stalled = 0
            except asyncio.TimeoutError:
                self._stalled += 1
                self._on_drain_timeout()
            except (OSError, ConnectionError):
                self._fail(burst)
                return
            if burst is not None and not burst.done():
                burst.set_result(None)

    def _fail(self, burst: Optional[asyncio.Future]) -> None:
        self._closed = True
        self._on_failure(self.pid)
        for fut in (burst, self._burst):
            if fut is not None and not fut.done():
                fut.set_result(None)
        self._burst = None
        self._queue.clear()
