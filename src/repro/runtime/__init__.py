"""Asyncio TCP runtime: the same protocol state machines over real sockets.

The simulator is the measurement substrate; this package is the deployment
substrate.  A :class:`~repro.runtime.node.RegisterServerNode` hosts any
server state machine behind a TCP listener with HMAC-authenticated framed
messages, and :class:`~repro.runtime.client.AsyncRegisterClient` executes
read/write operations against a set of such nodes.
:class:`~repro.runtime.cluster.LocalCluster` spins an entire deployment up
in one process for examples and the E10 benchmark.

Only client-to-server protocols run here (BSR, BCSR, the regular variants
and ABD); the RB baseline needs server-to-server links and lives in the
simulator.

The runtime is fault-hardened: clients self-heal lost connections
(backoff + jitter + in-flight re-send), nodes crash-restart from
snapshots, and ``LocalCluster(..., chaos=True)`` interposes
:mod:`repro.chaos` proxies on every link for fault injection (see
``docs/runtime.md``).
"""

from repro.runtime.client import AsyncRegisterClient
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import RegisterServerNode

__all__ = ["RegisterServerNode", "AsyncRegisterClient", "LocalCluster"]
