"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system was configured with invalid parameters.

    Examples: ``n < 4f + 1`` for BSR, a non-positive number of servers, or an
    erasure code with ``k < 1``.
    """


class QuorumError(ConfigurationError):
    """Quorum arithmetic is unsatisfiable for the given ``n`` and ``f``."""


class ProtocolError(ReproError):
    """A message violated the protocol (unknown type, bad fields)."""


class AuthenticationError(ProtocolError):
    """A message failed signature verification."""


class DecodingError(ReproError):
    """An erasure-coded value could not be decoded.

    Raised by the Reed-Solomon decoder when the received coded elements
    contain more errors/erasures than the ``[n, k]`` code can correct.
    """


class OperationAborted(ReproError):
    """A client operation was aborted (e.g. the client crashed mid-flight)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class LivenessError(SimulationError):
    """An operation failed to terminate within the simulated horizon.

    Per Theorem 1 / Lemma 6 liveness only holds while at most ``f`` servers
    are unresponsive; this error surfaces executions that exceed that budget.
    """


class ConsistencyViolation(ReproError):
    """A recorded execution violates the consistency condition being checked.

    Carries a human-readable explanation of the offending operations so that
    test failures point directly at the violating read/write pair.
    """

    def __init__(self, message: str, *, operations: tuple = ()) -> None:
        super().__init__(message)
        self.operations = operations
