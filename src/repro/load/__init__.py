"""Open-loop multi-process load generation with honest latency.

The north star is "heavy traffic from millions of users", and every
number published before this package came from closed-loop drivers --
which slow down when the system does, silently excluding queueing delay
from the recorded latency (*coordinated omission*).  This package is the
open-loop answer, layered on everything below it:

* :mod:`repro.load.profile` -- :class:`LoadProfile` (offered rate, mix,
  keyspace, windows) and :class:`SloPolicy` (the pass/fail judgement).
* :mod:`repro.load.worker` -- :class:`OpenLoopEngine`: one process's
  sessions replaying a deterministic Poisson/Zipf arrival schedule
  (:mod:`repro.workloads.arrivals`), measuring every operation from its
  *scheduled* instant, and the ``repro load-worker`` stdin/stdout
  protocol.
* :mod:`repro.load.coordinator` -- :func:`run_load`: starts the cluster,
  fans out worker processes, merges their registries bucket-wise,
  re-checks the sampled consistency trace, and runs the SLO sweep that
  produces the max-sustainable-throughput figure.
* :mod:`repro.load.report` -- :class:`LoadReport`, the
  ``BENCH_load.json`` document and its human rendering.

Surfaced as ``repro load`` and benchmark E21 (``make bench-load``).
"""

from repro.load.coordinator import PassOutcome, run_load
from repro.load.profile import LoadProfile, SloPolicy, parse_mix
from repro.load.report import LoadReport, pass_metrics
from repro.load.worker import (
    OpenLoopEngine,
    make_value,
    run_worker,
    value_anomaly,
    worker_main,
)

__all__ = [
    "LoadProfile",
    "LoadReport",
    "OpenLoopEngine",
    "PassOutcome",
    "SloPolicy",
    "make_value",
    "parse_mix",
    "pass_metrics",
    "run_load",
    "run_worker",
    "value_anomaly",
    "worker_main",
]
