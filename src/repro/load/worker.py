"""Open-loop worker: replay an arrival schedule with honest latency.

One worker process runs one :class:`OpenLoopEngine`: a *pacer* coroutine
releases each :class:`~repro.workloads.arrivals.Arrival` at its
scheduled instant into a queue, and ``users`` session coroutines pull
from that queue and execute the operations against shared multiplexed
clients.  The discipline that makes the rig open-loop is in the
measurement, not the plumbing:

* Latency is measured from the arrival's *scheduled* instant, so an
  operation that waited behind a backlog is charged its queueing delay
  (``load_op_seconds``).  The closed-loop view -- measured from actual
  submission, the coordinated-omission number -- is recorded alongside
  it (``load_service_seconds``) so the two can be compared; the
  open-loop tests assert they diverge under overload.
* Late operations are *recorded as queued, never skipped*: a session
  that dequeues an arrival past its due time counts it in
  ``load_ops_queued_total`` and runs it anyway.
* When the run ends, whatever backlog remains after a bounded drain
  grace is *abandoned* -- counted as failures with their
  latency-so-far observed as a lower bound -- rather than silently
  dropped, so an overloaded pass reports an honestly bad tail instead
  of a rosy truncated one.

Writes carry self-certifying values (``key|writer|seq`` padded to the
configured size), so every sampled read can be prefix-checked on the
spot and the full sampled trace re-checked by the coordinator with the
paper's safety checker.

``worker_main`` is the ``repro load-worker`` subprocess entry point:
config arrives as one JSON document on stdin, progress leaves as JSON
lines on stdout (``ready`` / ``snapshot`` / ``done``) -- the same
pipe-per-child protocol the node supervisor uses for readiness lines.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from typing import Any, Dict, IO, List, Optional, Sequence

from repro.core.namespace import DEFAULT_REGISTER
from repro.errors import LivenessError
from repro.obs import MetricRegistry
from repro.sim.rng import SimRng
from repro.workloads.arrivals import (
    COOLDOWN,
    MEASURE,
    WARMUP,
    Arrival,
    Windows,
    generate_arrivals,
)

#: A dequeue this much past its scheduled instant counts as "queued"
#: (sessions were saturated); smaller skews are scheduler jitter.
LATE_THRESHOLD = 0.001

#: Hard cap on sampled-trace records per worker (the coordinator merges
#: every worker's, so the cap bounds IPC payloads, not coverage of the
#: sampled keys under normal rates).
TRACE_LIMIT = 50_000

_WINDOWS = (WARMUP, MEASURE, COOLDOWN)


def make_value(register: str, writer: Any, seq: int, size: int) -> bytes:
    """A self-certifying write value: ``key|writer|seq`` padded to size."""
    body = f"{register}|{writer}|{seq}".encode()
    return body.ljust(size, b".") if len(body) < size else body


def value_anomaly(register: str, value: Any,
                  initial: bytes = b"") -> Optional[str]:
    """Why a read value could not have been written to ``register``.

    ``None`` when the value is the initial value or carries the
    register's self-certifying prefix; otherwise a description (a value
    from another key, or bytes no writer of this rig produced).
    """
    if not isinstance(value, (bytes, bytearray)):
        return f"non-bytes value {type(value).__name__}"
    stripped = bytes(value).rstrip(b".")
    if stripped == initial:
        return None
    if stripped.startswith(f"{register}|".encode()):
        return None
    return f"value {stripped[:64]!r} does not certify for key {register!r}"


class OpenLoopEngine:
    """Replay ``arrivals`` against ``clients`` with open-loop recording.

    ``clients`` are duck-typed: anything with ``client_id`` and
    awaitable ``read(register=...)`` / ``write(value, register=...)``
    (the open-loop tests drive the engine with synthetic slow clients).
    Sessions share them round-robin -- the real client multiplexes any
    number of concurrent operations over one connection set.
    """

    def __init__(self, arrivals: Sequence[Arrival], windows: Windows,
                 clients: Sequence[Any], registry: MetricRegistry,
                 users: int, value_size: int = 64,
                 sample_keys: Sequence[str] = (),
                 initial_value: bytes = b"",
                 drain_grace: float = 10.0,
                 trace_limit: int = TRACE_LIMIT) -> None:
        if users < 1:
            raise ValueError("users must be at least 1")
        if not clients:
            raise ValueError("at least one client is required")
        self.arrivals = list(arrivals)
        self.windows = windows
        self.clients = list(clients)
        self.registry = registry
        self.users = users
        self.value_size = value_size
        self.sample_keys = frozenset(sample_keys)
        self.initial_value = initial_value
        self.drain_grace = drain_grace
        self.trace_limit = trace_limit
        self.trace: List[Dict[str, Any]] = []
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._seq = 0
        self._max_backlog = 0
        self._op_hist = {
            (op, window): registry.histogram("load_op_seconds", op=op,
                                             window=window)
            for op in ("read", "write") for window in _WINDOWS
        }
        self._service_hist = {
            (op, window): registry.histogram("load_service_seconds", op=op,
                                             window=window)
            for op in ("read", "write") for window in _WINDOWS
        }
        self._delay_hist = {
            window: registry.histogram("load_queue_delay_seconds",
                                       window=window)
            for window in _WINDOWS
        }
        self._arrivals_counter = {
            window: registry.counter("load_arrivals_total", window=window)
            for window in _WINDOWS
        }
        self._queued = registry.counter("load_ops_queued_total")
        self._anomalies = registry.counter("load_value_anomalies_total")
        self._backlog = registry.gauge("load_backlog")

    @property
    def backlog(self) -> int:
        """Arrivals released but not yet picked up by a session."""
        return self._queue.qsize()

    async def run(self) -> Dict[str, Any]:
        """Replay the whole schedule; returns the run's summary dict."""
        loop = asyncio.get_running_loop()
        self._epoch = loop.time()
        sessions = [asyncio.ensure_future(self._session(i))
                    for i in range(self.users)]
        await self._pace()
        abandoned = 0
        done, pending = await asyncio.wait(
            sessions, timeout=self.drain_grace)
        if pending:
            # Bounded drain: whatever the backlog still holds is counted,
            # not forgotten.  First the queued-but-unstarted arrivals ...
            now = loop.time()
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is None:
                    continue
                sched, arrival = item
                self._record_abandoned(arrival, sched, now)
                abandoned += 1
            # ... then the in-flight ones (their cancellation handler
            # records them -- see _execute).
            for task in pending:
                task.cancel()
            results = await asyncio.gather(*pending, return_exceptions=True)
            abandoned += sum(1 for r in results
                             if isinstance(r, asyncio.CancelledError))
        for task in done:
            task.result()  # surface engine bugs, not op failures
        self._backlog.set(0)
        return {
            "arrivals": {window: int(counter.value) for window, counter
                         in self._arrivals_counter.items()},
            "abandoned": abandoned,
            "queued": int(self._queued.value),
            "anomalies": int(self._anomalies.value),
            "max_backlog": self._max_backlog,
            "trace_records": len(self.trace),
            "trace_truncated": len(self.trace) >= self.trace_limit,
        }

    async def _pace(self) -> None:
        """Release every arrival at its scheduled instant, never skipping.

        When the loop falls behind (the process was starved), all due
        arrivals are released immediately -- they enter the queue late
        and their lateness is charged to their latency, which is the
        whole point.
        """
        loop = asyncio.get_running_loop()
        epoch = self._epoch
        put = self._queue.put_nowait
        for arrival in self.arrivals:
            target = epoch + arrival.offset
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            self._arrivals_counter[self.windows.label(arrival.offset)].inc()
            put((target, arrival))
            backlog = self._queue.qsize()
            if backlog > self._max_backlog:
                self._max_backlog = backlog
        for _ in range(self.users):
            put(None)

    async def _session(self, index: int) -> None:
        client = self.clients[index % len(self.clients)]
        queue = self._queue
        while True:
            item = await queue.get()
            if item is None:
                return
            sched, arrival = item
            await self._execute(client, sched, arrival)

    async def _execute(self, client: Any, sched: float,
                       arrival: Arrival) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()
        window = self.windows.label(arrival.offset)
        delay = start - sched
        self._delay_hist[window].observe(max(0.0, delay))
        if delay > LATE_THRESHOLD:
            self._queued.inc()
        key = arrival.key
        register = key if key is not None else DEFAULT_REGISTER
        sampled = register in self.sample_keys
        wall_start = time.time()
        outcome = "ok"
        value: Any = None
        entry: Optional[Dict[str, Any]] = None
        if sampled and arrival.kind == "write" and (
                len(self.trace) < self.trace_limit):
            # Logged *before* the attempt and left incomplete on failure:
            # safety quantifies over writes that began, and a timed-out
            # write may still have committed server side.
            entry = {"client": str(client.client_id), "kind": "write",
                     "key": register, "start": wall_start, "end": None,
                     "value": None}
            self.trace.append(entry)
        try:
            if arrival.kind == "write":
                self._seq += 1
                value = make_value(register, client.client_id, self._seq,
                                   self.value_size)
                if entry is not None:
                    entry["value"] = value.decode("utf-8", "replace")
                if key is None:
                    await client.write(value)
                else:
                    await client.write(value, register=key)
            else:
                value = await (client.read() if key is None
                               else client.read(register=key))
        except asyncio.CancelledError:
            self._record_abandoned(arrival, sched, loop.time())
            raise
        except LivenessError:
            outcome = "timeout"
        except Exception as exc:
            outcome = "error"
            self.registry.counter("load_errors_total",
                                  kind=type(exc).__name__).inc()
        end = loop.time()
        self._op_hist[(arrival.kind, window)].observe(end - sched)
        self._service_hist[(arrival.kind, window)].observe(end - start)
        self.registry.counter("load_ops_total", op=arrival.kind,
                              window=window, outcome=outcome).inc()
        if outcome != "ok":
            return
        if entry is not None:
            entry["end"] = time.time()
        elif sampled and arrival.kind == "read":
            anomaly = value_anomaly(register, value, self.initial_value)
            if anomaly is not None:
                self._anomalies.inc()
            if len(self.trace) < self.trace_limit:
                rendered = (bytes(value).decode("utf-8", "replace")
                            if isinstance(value, (bytes, bytearray))
                            else None)
                self.trace.append({
                    "client": str(client.client_id),
                    "kind": "read",
                    "key": register,
                    "start": wall_start,
                    "end": time.time(),
                    "value": rendered,
                })

    def _record_abandoned(self, arrival: Arrival, sched: float,
                          now: float) -> None:
        """Count one never-finished arrival with its lower-bound latency."""
        window = self.windows.label(arrival.offset)
        self._op_hist[(arrival.kind, window)].observe(max(0.0, now - sched))
        self.registry.counter("load_ops_total", op=arrival.kind,
                              window=window, outcome="abandoned").inc()


# -- subprocess protocol ----------------------------------------------------

def _emit(stream: IO[str], event: str, **fields: Any) -> None:
    record = {"event": event, **fields}
    stream.write(json.dumps(record, separators=(",", ":"),
                            sort_keys=True) + "\n")
    stream.flush()


async def _stream_snapshots(engine: OpenLoopEngine, registry: MetricRegistry,
                            stream: IO[str], worker: int,
                            interval: float) -> None:
    try:
        while True:
            await asyncio.sleep(interval)
            engine._backlog.set(engine.backlog)
            _emit(stream, "snapshot", worker=worker, ts=time.time(),
                  snapshot=registry.snapshot())
    except asyncio.CancelledError:
        return


async def run_worker(config: Dict[str, Any],
                     stream: IO[str]) -> Dict[str, Any]:
    """Run one worker's pass per ``config``; emits protocol lines.

    The coordinator builds the config: the full cluster spec (so the
    worker derives keys and placement exactly as any client would), the
    live address map, this worker's profile slice and its index.
    """
    from repro.deploy.spec import ClusterSpec
    from repro.load.profile import LoadProfile

    worker = int(config.get("worker", 0))
    spec = ClusterSpec.from_dict(config["spec"])
    profile = LoadProfile.from_dict(config["profile"])
    addresses = {pid: (host, int(port)) for pid, (host, port)
                 in config["addresses"].items()}
    registry = MetricRegistry()
    windows = profile.windows()
    rng = SimRng(profile.seed, f"load/worker{worker:03d}")
    arrivals = generate_arrivals(profile.rps, windows, profile.read_ratio,
                                 rng, num_keys=profile.keys,
                                 zipf_s=profile.zipf_s)
    clients = [
        spec.client(f"lw{worker:02d}c{i:02d}", addresses=addresses,
                    timeout=profile.timeout, registry=registry)
        for i in range(min(profile.clients_per_worker, profile.users))
    ]
    try:
        for client in clients:
            await client.connect()
        engine = OpenLoopEngine(
            arrivals, windows, clients, registry, users=profile.users,
            value_size=profile.value_size, sample_keys=profile.sample_keys,
            initial_value=spec.initial_value.encode(),
            drain_grace=min(profile.timeout, 10.0))
        _emit(stream, "ready", worker=worker, arrivals=len(arrivals))
        streamer = asyncio.ensure_future(_stream_snapshots(
            engine, registry, stream, worker,
            float(config.get("snapshot_interval", 1.0))))
        try:
            summary = await engine.run()
        finally:
            streamer.cancel()
            try:
                await streamer
            except asyncio.CancelledError:
                pass
        result = {
            "worker": worker,
            "summary": summary,
            "snapshot": registry.snapshot(),
            "trace": engine.trace,
        }
        _emit(stream, "done", worker=worker, result=result)
        return result
    finally:
        for client in clients:
            await client.close()


def worker_main(stdin: IO[str] = None, stdout: IO[str] = None) -> int:
    """``repro load-worker`` entry point: config on stdin, JSONL out."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    config = json.load(stdin)
    asyncio.run(run_worker(config, stdout))
    return 0
