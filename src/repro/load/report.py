"""Shaping load-rig results: per-pass metrics, SLO verdicts, the report.

Every number here is computed from the pass's *merged* registry snapshot
(one bucket-wise aggregated histogram across all workers -- see
:func:`~repro.obs.registry.merge_registry_snapshots`), restricted to the
measured window by the ``window="measure"`` label the workers stamped at
scheduling time.  p999 comes from the same fixed buckets as p50/p99 via
:func:`~repro.obs.stats.bucket_percentile`; the estimate errs upward by
at most one bucket width and is clamped by the exact observed maximum.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.load.profile import LoadProfile, SloPolicy
from repro.metrics import format_table
from repro.obs import aggregate_histograms, bucket_percentile

#: Operation outcomes a pass accounts for (``ok`` + the failure modes).
OUTCOMES = ("ok", "error", "timeout", "abandoned")


def _counter_sum(snapshot: Dict, name: str, **labels: str) -> float:
    total = 0.0
    for entry in snapshot.get("counters", ()):
        if entry.get("name") != name:
            continue
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += float(entry["value"])
    return total


def _percentile_ms(entry: Optional[Dict], fraction: float) -> float:
    if entry is None or not sum(entry["counts"]):
        return 0.0
    return bucket_percentile(entry["buckets"], entry["counts"], fraction,
                             entry["max"]) * 1000.0


def pass_metrics(outcome, slo: SloPolicy) -> Dict[str, Any]:
    """One pass's report entry: rates, percentiles, the SLO verdict.

    ``outcome`` is a :class:`~repro.load.coordinator.PassOutcome`
    (duck-typed here to keep this module import-light for the tests).
    """
    snapshot = outcome.snapshot
    duration = outcome.measure_duration
    arrivals = _counter_sum(snapshot, "load_arrivals_total",
                            window="measure")
    counts = {name: int(_counter_sum(snapshot, "load_ops_total",
                                     window="measure", outcome=name))
              for name in OUTCOMES}
    total = sum(counts.values())
    failed = total - counts["ok"]
    error_rate = failed / total if total else 0.0
    honest = aggregate_histograms(snapshot, "load_op_seconds",
                                  window="measure")
    service = aggregate_histograms(snapshot, "load_service_seconds",
                                   window="measure")
    queue_delay = aggregate_histograms(snapshot, "load_queue_delay_seconds",
                                       window="measure")
    p99_ms = _percentile_ms(honest, 0.99)
    metrics = {
        "pass": outcome.label,
        "target_rps": outcome.target_rps,
        "offered_rps": arrivals / duration if duration else 0.0,
        "achieved_rps": counts["ok"] / duration if duration else 0.0,
        "measure_s": duration,
        "arrivals": int(arrivals),
        "ops": counts,
        "error_rate": error_rate,
        "p50_ms": _percentile_ms(honest, 0.50),
        "p99_ms": p99_ms,
        "p999_ms": _percentile_ms(honest, 0.999),
        "read_p99_ms": _percentile_ms(
            aggregate_histograms(snapshot, "load_op_seconds", op="read",
                                 window="measure"), 0.99),
        "write_p99_ms": _percentile_ms(
            aggregate_histograms(snapshot, "load_op_seconds", op="write",
                                 window="measure"), 0.99),
        "service_p99_ms": _percentile_ms(service, 0.99),
        "queue_delay_p99_ms": _percentile_ms(queue_delay, 0.99),
        "queued": int(_counter_sum(snapshot, "load_ops_queued_total")),
        "throttled": int(_counter_sum(snapshot, "client_throttled_total")),
        "max_backlog": max((s.get("max_backlog", 0)
                            for s in outcome.summaries), default=0),
        "violations": outcome.violations,
        "safety": outcome.safety_detail,
        "wall_s": outcome.wall_time,
        "slo": slo.evaluate(p99_ms, error_rate, outcome.violations),
    }
    return metrics


@dataclass
class LoadReport:
    """The whole run: configuration, every pass, the sustainable figure."""

    profile: Dict[str, Any]
    slo: Dict[str, Any]
    procs: bool
    workers: int
    sweep: str
    passes: List[Dict[str, Any]] = field(default_factory=list)
    max_sustainable_rps: float = 0.0
    safety_ok: bool = True
    safety_detail: str = ""

    @classmethod
    def build(cls, profile: LoadProfile, slo: SloPolicy, outcomes: List,
              procs: bool, workers: int, sweep: str) -> "LoadReport":
        passes = [pass_metrics(outcome, slo) for outcome in outcomes]
        sustainable = [entry["offered_rps"] for entry in passes
                       if entry["slo"]["ok"]]
        main = passes[0] if passes else None
        return cls(
            profile=profile.to_dict(), slo=slo.to_dict(), procs=procs,
            workers=workers, sweep=sweep, passes=passes,
            max_sustainable_rps=max(sustainable) if sustainable else 0.0,
            safety_ok=all(entry["violations"] == 0 for entry in passes),
            safety_detail=main["safety"] if main else "",
        )

    @property
    def main(self) -> Dict[str, Any]:
        """The full-duration pass at the target rate (always first)."""
        return self.passes[0]

    def to_dict(self) -> Dict[str, Any]:
        """The ``BENCH_load.json`` document (shared bench schema)."""
        return {
            "experiment": "E21-load",
            "config": {
                "profile": self.profile,
                "slo": self.slo,
                "procs": self.procs,
                "workers": self.workers,
                "sweep": self.sweep,
            },
            "results": self.passes,
            "max_sustainable_rps": self.max_sustainable_rps,
            "safety": {"ok": self.safety_ok, "detail": self.safety_detail},
        }

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def format(self) -> str:
        """Human-readable report (the ``repro load`` output)."""
        profile = self.profile
        backend = "OS processes" if self.procs else "in-process cluster"
        lines = [
            f"open-loop load: {profile['algorithm']} f={profile['f']} "
            f"({backend}, {self.workers} workers x "
            f"{profile['users'] // max(1, self.workers)}+ sessions, "
            f"{profile['keys']} keys, "
            f"{profile['read_ratio']:.0%} reads, seed {profile['seed']})",
        ]
        rows = []
        for entry in self.passes:
            verdict = "pass" if entry["slo"]["ok"] else "FAIL"
            rows.append((
                entry["pass"], f"{entry['offered_rps']:.0f}",
                f"{entry['achieved_rps']:.0f}",
                f"{entry['p50_ms']:.1f}", f"{entry['p99_ms']:.1f}",
                f"{entry['p999_ms']:.1f}",
                f"{entry['error_rate']:.2%}", entry["violations"], verdict,
            ))
        lines.append(format_table(
            ("pass", "offered/s", "achieved/s", "p50(ms)", "p99(ms)",
             "p999(ms)", "errors", "viol", "slo"), rows))
        main = self.main
        lines.append(
            f"main pass: honest p99 {main['p99_ms']:.1f}ms vs closed-loop "
            f"(service) p99 {main['service_p99_ms']:.1f}ms; queue-delay "
            f"p99 {main['queue_delay_p99_ms']:.1f}ms; "
            f"{main['queued']} ops queued late, "
            f"{main['ops']['abandoned']} abandoned, "
            f"max backlog {main['max_backlog']}")
        lines.append(f"consistency: "
                     f"{'OK' if self.safety_ok else 'VIOLATIONS'} -- "
                     f"{self.safety_detail}")
        lines.append(
            f"max sustainable throughput (p99 <= "
            f"{self.slo['p99_ms']:.0f}ms, errors <= "
            f"{self.slo['max_error_rate']:.2%}): "
            f"{self.max_sustainable_rps:.0f} rps"
            + (" (no pass met the SLO)"
               if self.max_sustainable_rps == 0.0 else ""))
        return "\n".join(lines)
