"""Load-rig coordinator: clusters, worker fleets, merges, SLO sweeps.

:func:`run_load` is the one entry point behind ``repro load`` and
benchmark E21.  It starts a cluster (in-process
:class:`~repro.runtime.cluster.LocalCluster` or, with ``procs=True``, a
process-per-node :class:`~repro.deploy.supervisor.ClusterSupervisor`),
then runs one or more *passes* against it:

* the **main pass** offers the target rate for the full measured window
  with consistency sampling on (every operation on the sampled keys is
  logged; the coordinator re-checks the merged trace with the paper's
  safety checker afterwards), and
* the **SLO sweep** re-runs shorter passes at other rates -- step
  fractions of the target by default, binary refinement with
  ``sweep="binary"`` -- to locate the maximum rate that still meets the
  :class:`~repro.load.profile.SloPolicy`.

Each pass spawns ``workers`` fresh ``repro load-worker`` subprocesses
(or inline tasks with ``inline=True``) and feeds each its profile slice
as JSON on stdin, mirroring the node supervisor's pipe-per-child idiom.
Workers stream registry snapshots back as JSON lines; the coordinator
tees them into the optional time-series log and, at the end, *aggregates*
the final per-worker registries with
:func:`~repro.obs.registry.merge_registry_snapshots`, so the reported
percentiles are computed from one merged histogram, not averaged
per-worker numbers.

Sweep passes run against the same (now warm, non-empty) cluster, so
full trace sampling is off for them -- a read there can legitimately
return a value written by an earlier pass.  They keep the per-read
prefix check (self-certifying values are pass-agnostic), which is the
consistency clause their SLO verdict uses.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.consistency import check_safety, check_safety_per_register
from repro.consistency.registers import REGISTER_META
from repro.core.namespace import DEFAULT_REGISTER
from repro.errors import ConfigurationError
from repro.load.profile import LoadProfile, SloPolicy
from repro.load.report import LoadReport, pass_metrics
from repro.load.worker import run_worker
from repro.obs import SnapshotLog, merge_registry_snapshots
from repro.protocols import get_spec
from repro.sharding import KeyspaceConfig
from repro.sim.trace import OpKind, Trace
from repro.workloads.arrivals import sample_keys as spread_sample_keys

#: Popularity ranks sampled for the consistency trace (per run).
SAMPLE_KEY_COUNT = 4

SWEEP_MODES = ("step", "binary", "none")

#: Step-sweep fractions of the target rate (the main pass is the 1.0
#: data point, so it is not repeated).
STEP_FRACTIONS = (0.25, 0.5, 0.75)


@dataclass
class PassOutcome:
    """Everything one pass produced, before report shaping."""

    label: str
    target_rps: float
    measure_duration: float
    snapshot: Dict
    summaries: List[Dict]
    trace_records: List[Dict]
    wall_time: float
    violations: int = 0
    safety_detail: str = ""
    sampled: bool = False


def _build_spec(profile: LoadProfile, seed_tag: str):
    from repro.deploy.spec import ClusterSpec, reserve_ports
    from repro.types import server_id

    proto = get_spec(profile.algorithm)
    keyspace: Optional[KeyspaceConfig] = None
    if profile.keys > 1:
        if not proto.namespaced_ok:
            raise ConfigurationError(
                f"algorithm {profile.algorithm!r} does not support a "
                f"sharded keyspace")
        keyspace = KeyspaceConfig(
            group_size=proto.min_servers(profile.f),
            seed=profile.seed)
    nodes: Dict[str, Any] = {}
    if proto.peer_links:
        # Peer-linked servers dial each other from the spec, so every
        # node's port must be pinned before the cluster starts.
        n = profile.n if profile.n is not None else proto.min_servers(
            profile.f)
        nodes = {str(server_id(i)): ["127.0.0.1", port]
                 for i, port in enumerate(reserve_ports(n))}
    return ClusterSpec(
        algorithm=profile.algorithm, f=profile.f, n=profile.n,
        secret=f"load-{seed_tag}", max_history=profile.max_history,
        nodes=nodes,
        keyspace=keyspace.to_dict() if keyspace is not None else {},
    )


def _child_env() -> Dict[str, str]:
    """Child environment that can import this very copy of the package."""
    import repro

    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_root + os.pathsep + existing
                             if existing else package_root)
    return env


class _LineSink:
    """File-like adapter feeding a worker's protocol lines to a handler.

    Inline workers write the same JSON lines a subprocess would write to
    its stdout; this sink parses each one and hands it to the
    coordinator's per-event handler, so both execution modes share one
    protocol path.
    """

    def __init__(self, handler) -> None:
        self._handler = handler
        self._buffer = ""

    def write(self, text: str) -> int:
        self._buffer += text
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            if line.strip():
                self._handler(json.loads(line))
        return len(text)

    def flush(self) -> None:
        pass


async def _run_pass(spec, addresses: Dict[str, Tuple[str, int]],
                    profile: LoadProfile, label: str, workers: int,
                    inline: bool,
                    timeseries: Optional[SnapshotLog]) -> PassOutcome:
    """Run one pass's worker fleet and merge what came back."""
    loop = asyncio.get_running_loop()
    started = loop.time()
    spec_dict = spec.to_dict()
    address_map = {str(pid): [host, port]
                   for pid, (host, port) in addresses.items()}

    def config_for(index: int) -> Dict[str, Any]:
        return {
            "worker": index,
            "workers": workers,
            "spec": spec_dict,
            "addresses": address_map,
            "profile": profile.worker_slice(index, workers).to_dict(),
        }

    def handle_event(index: int, record: Dict) -> Optional[Dict]:
        if record.get("event") == "snapshot" and timeseries is not None:
            timeseries.append(record["snapshot"], record["ts"],
                              extra={"worker": index, "pass": label})
        if record.get("event") == "done":
            return record["result"]
        return None

    async def run_inline(index: int) -> Dict:
        result_box: List[Dict] = []
        sink = _LineSink(lambda rec: result_box.append(r)
                         if (r := handle_event(index, rec)) else None)
        await run_worker(config_for(index), sink)
        if not result_box:
            raise RuntimeError(f"inline worker {index} produced no result")
        return result_box[0]

    async def run_subprocess(index: int) -> Dict:
        # The final ``done`` line carries the worker's whole registry
        # snapshot plus its sampled trace on one JSON line -- far past
        # asyncio's default 64 KiB readline limit.
        process = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro", "load-worker",
            env=_child_env(), limit=64 * 1024 * 1024,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE)
        process.stdin.write(json.dumps(config_for(index)).encode())
        await process.stdin.drain()
        process.stdin.close()
        result: Optional[Dict] = None
        while True:
            line = await process.stdout.readline()
            if not line:
                break
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # stray child output; protocol lines are JSON
            got = handle_event(index, record)
            if got is not None:
                result = got
        await process.wait()
        if result is None:
            raise RuntimeError(
                f"load worker {index} exited (rc={process.returncode}) "
                f"without reporting a result")
        return result

    runner = run_inline if inline else run_subprocess
    results = await asyncio.gather(*(runner(i) for i in range(workers)))
    merged = merge_registry_snapshots([r["snapshot"] for r in results])
    trace_records: List[Dict] = []
    for result in results:
        trace_records.extend(result.get("trace", ()))
    trace_records.sort(key=lambda rec: rec["start"])
    return PassOutcome(
        label=label, target_rps=profile.rps,
        measure_duration=profile.duration, snapshot=merged,
        summaries=[r["summary"] for r in results],
        trace_records=trace_records, wall_time=loop.time() - started,
        sampled=bool(profile.sample_keys),
    )


def _rebuild_trace(records: List[Dict], per_register: bool) -> Trace:
    """The paper-checker :class:`Trace` from shipped worker records.

    Workers stamp operations with wall-clock times (one host, so the
    clocks agree across processes); failed writes arrive with ``end:
    None`` and stay incomplete, exactly as safety's "writes that began"
    quantifier wants.
    """
    trace = Trace()
    for rec in records:
        kind = OpKind.WRITE if rec["kind"] == "write" else OpKind.READ
        value = (rec["value"].encode("utf-8", "replace")
                 if rec.get("value") is not None else None)
        entry = trace.begin(rec["client"], kind, rec["start"],
                            value=value if kind is OpKind.WRITE else None)
        if per_register:
            entry.meta[REGISTER_META] = rec["key"]
        if rec.get("end") is not None:
            trace.complete(entry, rec["end"],
                           value=value if kind is OpKind.READ else None)
    return trace


def _check_pass(outcome: PassOutcome, profile: LoadProfile,
                initial_value: bytes) -> None:
    """Judge a sampled pass's trace; records violations on the outcome."""
    anomalies = int(_counter_sum(outcome.snapshot,
                                 "load_value_anomalies_total"))
    if not outcome.sampled:
        outcome.violations = anomalies
        outcome.safety_detail = (
            f"prefix checks only ({anomalies} anomalies)")
        return
    truncated = any(s.get("trace_truncated") for s in outcome.summaries)
    if truncated:
        outcome.violations = anomalies
        outcome.safety_detail = (
            "sampled trace truncated at the per-worker cap; full safety "
            f"check skipped ({anomalies} prefix anomalies)")
        return
    per_register = profile.keys > 1
    trace = _rebuild_trace(outcome.trace_records, per_register)
    if per_register:
        safety = check_safety_per_register(trace,
                                           initial_value=initial_value)
    else:
        safety = check_safety(trace, initial_value=initial_value)
    outcome.violations = len(safety.violations) + anomalies
    outcome.safety_detail = (
        f"{len(trace)} sampled ops: {safety}"
        + (f"; {anomalies} prefix anomalies" if anomalies else ""))


def _counter_sum(snapshot: Dict, name: str, **labels: str) -> float:
    total = 0.0
    for entry in snapshot.get("counters", ()):
        if entry.get("name") != name:
            continue
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += float(entry["value"])
    return total


async def run_load(profile: LoadProfile, procs: bool = False,
                   workers: int = 2, slo: Optional[SloPolicy] = None,
                   sweep: str = "step",
                   sweep_duration: Optional[float] = None,
                   sweep_iterations: int = 3,
                   inline: bool = False,
                   timeseries_path: Optional[str] = None) -> LoadReport:
    """Run the main pass plus the SLO sweep; returns the full report.

    ``sweep="step"`` (default) adds short passes at
    :data:`STEP_FRACTIONS` of the target rate; ``"binary"`` additionally
    refines between the best passing and worst failing rates for
    ``sweep_iterations`` rounds; ``"none"`` runs only the main pass (the
    max-sustainable figure then rests on that single data point).
    """
    if sweep not in SWEEP_MODES:
        raise ConfigurationError(
            f"sweep must be one of {SWEEP_MODES}, got {sweep!r}")
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    slo = slo if slo is not None else SloPolicy()
    profile = dataclasses.replace(
        profile, sample_keys=(
            spread_sample_keys(profile.keys, SAMPLE_KEY_COUNT)
            if profile.keys > 1 else [DEFAULT_REGISTER]))
    spec = _build_spec(profile, seed_tag=str(profile.seed))
    initial_value = spec.initial_value.encode()

    if procs:
        from repro.deploy.supervisor import ClusterSupervisor
        cluster = ClusterSupervisor(spec)
    else:
        from repro.runtime.cluster import LocalCluster
        cluster = LocalCluster(
            profile.algorithm, f=profile.f, n=spec.n,
            secret=spec.secret_bytes, max_history=profile.max_history,
            keyspace=spec.keyspace_config())

    timeseries = (SnapshotLog(timeseries_path, windows=True)
                  if timeseries_path is not None else None)
    outcomes: List[PassOutcome] = []
    await cluster.start()
    try:
        addresses = cluster.addresses
        main = await _run_pass(spec, addresses, profile, "main", workers,
                               inline, timeseries)
        _check_pass(main, profile, initial_value)
        outcomes.append(main)

        if sweep != "none":
            short = sweep_duration if sweep_duration is not None else min(
                max(profile.duration / 3.0, 3.0), 8.0)

            async def sweep_pass(rate: float, label: str) -> PassOutcome:
                sub = dataclasses.replace(
                    profile, rps=rate, duration=short,
                    warmup=min(profile.warmup, 1.0), cooldown=0.25,
                    seed=profile.seed + 1000 + len(outcomes),
                    sample_keys=[])
                outcome = await _run_pass(spec, addresses, sub, label,
                                          workers, inline, timeseries)
                _check_pass(outcome, sub, initial_value)
                outcomes.append(outcome)
                return outcome

            for fraction in STEP_FRACTIONS:
                await sweep_pass(profile.rps * fraction,
                                 f"step-{fraction:g}")
            if sweep == "binary":
                judged = [(o, pass_metrics(o, slo)) for o in outcomes]
                passing = [m["offered_rps"] for o, m in judged
                           if m["slo"]["ok"]]
                failing = [m["offered_rps"] for o, m in judged
                           if not m["slo"]["ok"]]
                lo = max(passing) if passing else 0.0
                hi = min(failing) if failing else profile.rps * 1.5
                for round_index in range(sweep_iterations):
                    if hi - lo <= max(1.0, 0.05 * profile.rps):
                        break
                    mid = (lo + hi) / 2.0
                    outcome = await sweep_pass(mid,
                                               f"binary-{round_index}")
                    metrics = pass_metrics(outcome, slo)
                    if metrics["slo"]["ok"]:
                        lo = metrics["offered_rps"]
                    else:
                        hi = mid
    finally:
        if timeseries is not None:
            timeseries.close()
        await cluster.stop()

    return LoadReport.build(profile=profile, slo=slo, outcomes=outcomes,
                            procs=procs, workers=workers, sweep=sweep)
