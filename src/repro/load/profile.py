"""Load-rig configuration: what to offer, how to judge it.

A :class:`LoadProfile` is the complete description of one open-loop
pass -- aggregate rate, session count, read/write mix, keyspace shape,
windows, seed -- and an :class:`SloPolicy` is the judgement applied to
the measured window afterwards.  Both serialize to plain dicts, because
the coordinator ships each worker its slice of the profile as one JSON
document over stdin (see :mod:`repro.load.worker`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workloads.arrivals import Windows


def parse_mix(mix: str) -> float:
    """``"90/10"`` (reads/writes) -> read ratio ``0.9``.

    Accepts any pair of non-negative numbers; they are normalised by
    their sum, so ``"9/1"`` and ``"90/10"`` mean the same workload.
    A bare number is taken as the read ratio directly (``"0.9"``).
    """
    text = mix.strip()
    if "/" not in text:
        try:
            ratio = float(text)
        except ValueError:
            raise ConfigurationError(f"cannot parse mix {mix!r}")
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError(
                f"bare mix ratio must be within [0, 1], got {mix!r}")
        return ratio
    parts = text.split("/")
    if len(parts) != 2:
        raise ConfigurationError(
            f"mix must look like 'reads/writes' (e.g. 90/10), got {mix!r}")
    try:
        reads, writes = float(parts[0]), float(parts[1])
    except ValueError:
        raise ConfigurationError(f"cannot parse mix {mix!r}")
    if reads < 0 or writes < 0 or reads + writes <= 0:
        raise ConfigurationError(
            f"mix shares must be non-negative and not both zero, got {mix!r}")
    return reads / (reads + writes)


@dataclass
class LoadProfile:
    """One open-loop pass: offered load, workload shape, windows, seed."""

    users: int = 200
    rps: float = 500.0
    read_ratio: float = 0.9
    keys: int = 1
    zipf_s: float = 0.99
    value_size: int = 64
    #: Measured window, seconds (the figure every rate refers to).
    duration: float = 10.0
    warmup: float = 2.0
    cooldown: float = 0.5
    seed: int = 0
    #: Per-operation liveness timeout, seconds.
    timeout: float = 10.0
    algorithm: str = "bsr"
    f: int = 1
    n: Optional[int] = None
    #: Real clients (TCP connections sets) per worker; sessions share
    #: them round-robin through the multiplexed dispatcher.
    clients_per_worker: int = 4
    #: Bound every server's per-register history so long passes do not
    #: grow node memory without bound.
    max_history: Optional[int] = 128
    #: Keys whose every operation is logged into the sampled
    #: consistency trace (filled by the coordinator).
    sample_keys: List[str] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ConfigurationError("users must be at least 1")
        if self.rps <= 0:
            raise ConfigurationError("rps must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError("read_ratio must be within [0, 1]")
        if self.keys < 1:
            raise ConfigurationError("keys must be at least 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.clients_per_worker < 1:
            raise ConfigurationError("clients_per_worker must be at least 1")

    def windows(self) -> Windows:
        return Windows(warmup=self.warmup, measure=self.duration,
                       cooldown=self.cooldown)

    def worker_slice(self, worker: int, workers: int) -> "LoadProfile":
        """This profile's share for one of ``workers`` worker processes.

        Rate and session count split evenly (remainders to the lowest
        indices); everything else -- including the seed, which the
        worker forks by its index -- is shared.
        """
        if not 0 <= worker < workers:
            raise ConfigurationError(
                f"worker index {worker} out of range for {workers} workers")
        users = self.users // workers + (1 if worker < self.users % workers
                                         else 0)
        return dataclasses.replace(self, users=max(1, users),
                                   rps=self.rps / workers)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoadProfile":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown load profile keys: {sorted(unknown)}")
        return cls(**data)


@dataclass
class SloPolicy:
    """Pass/fail judgement of one measured window.

    A pass *passes* when the measured p99 stays under ``p99_ms``, the
    error rate (errors + liveness timeouts + abandoned backlog, over
    all measured arrivals) stays under ``max_error_rate``, and the
    sampled consistency trace shows zero violations.
    """

    p99_ms: float = 250.0
    max_error_rate: float = 0.005

    def evaluate(self, p99_ms: float, error_rate: float,
                 violations: int) -> Dict[str, Any]:
        """Judge one pass; returns the verdict with per-clause detail."""
        clauses = {
            "p99": p99_ms <= self.p99_ms,
            "errors": error_rate <= self.max_error_rate,
            "consistency": violations == 0,
        }
        return {
            "ok": all(clauses.values()),
            "clauses": clauses,
            "p99_ms": p99_ms,
            "p99_limit_ms": self.p99_ms,
            "error_rate": error_rate,
            "error_rate_limit": self.max_error_rate,
            "violations": violations,
        }

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloPolicy":
        return cls(**data)
