"""repro: Semi-fast Byzantine-tolerant shared registers without reliable broadcast.

A production-quality reproduction of Konwar, Kumar & Tseng (ICDCS 2020):

* **BSR** -- replication-based multi-writer multi-reader *safe* register
  with one-shot (single-round) reads, ``n >= 4f + 1`` servers.
* **BCSR** -- MDS-erasure-coded single-writer multi-reader safe register
  with one-shot reads, ``n >= 5f + 1`` servers, ``1/k`` storage per server.
* **Regular extensions** -- history-based one-shot reads and two-round
  reads upgrading BSR to multi-writer regularity.
* **Baselines** -- the reliable-broadcast prior-work design
  (``n >= 3f + 1``) and crash-only ABD.
* **Substrates** -- a deterministic discrete-event simulator, a from-scratch
  Reed-Solomon codec with Berlekamp-Welch decoding, Bracha reliable
  broadcast, Byzantine behaviour injection, consistency checkers, workload
  generators and an asyncio TCP runtime.

Quickstart::

    from repro import RegisterSystem

    system = RegisterSystem("bsr", f=1)      # 5 servers, 1 Byzantine
    system.write(b"hello", writer=0, at=0.0)
    read = system.read(reader=0, at=10.0)
    system.run()
    assert read.value == b"hello"
"""

from repro.core.register import ALGORITHMS, OpHandle, RegisterSystem, make_system
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.errors import (
    ConfigurationError,
    ConsistencyViolation,
    DecodingError,
    QuorumError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "RegisterSystem",
    "make_system",
    "OpHandle",
    "ALGORITHMS",
    "Tag",
    "TaggedValue",
    "TAG_ZERO",
    "ReproError",
    "ConfigurationError",
    "QuorumError",
    "DecodingError",
    "ConsistencyViolation",
    "__version__",
]
