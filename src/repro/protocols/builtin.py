"""Registry entries for the repository's original six protocols.

Each spec bundles what used to be scattered across the runtime client,
the local cluster, the deployment spec, the simulator facade and the
CLI: operation factories, the server factory, the resilience bound, the
fault model and display metadata.
"""

from __future__ import annotations

from repro.baselines.abd import ABDReadOperation, ABDServer, ABDWriteOperation
from repro.baselines.rb_register import (
    RBReadOperation,
    RBRegisterServer,
    RBWriteOperation,
)
from repro.core.bcsr import (
    BCSRReadOperation,
    BCSRServer,
    BCSRWriteOperation,
    make_codec,
)
from repro.core.bsr import (
    BSRReadOperation,
    BSRReaderState,
    BSRServer,
    BSRWriteOperation,
)
from repro.core.quorum import (
    abd_min_servers,
    bcsr_min_servers,
    bsr_min_servers,
    rb_min_servers,
)
from repro.core.regular import (
    HistoryReadOperation,
    RegularBSRServer,
    TwoRoundReadOperation,
)
from repro.protocols.registry import (
    BYZANTINE,
    CRASH,
    ProtocolSpec,
    register,
)


def _bsr_write(ctx):
    return BSRWriteOperation(ctx.client_id, ctx.servers, ctx.f, ctx.value,
                             enforce_bounds=ctx.enforce_bounds)


def _bsr_server(ctx):
    return BSRServer(ctx.server_id, initial_value=ctx.initial_value,
                     max_history=ctx.max_history)


def _regular_server(ctx):
    return RegularBSRServer(ctx.server_id, initial_value=ctx.initial_value,
                            max_history=ctx.max_history)


BSR = register(ProtocolSpec(
    name="bsr",
    description="MWMR safe (Section III)",
    quorum_rule="4f + 1",
    min_servers=bsr_min_servers,
    fault_model=BYZANTINE,
    read_rounds="1",
    make_server=_bsr_server,
    make_write=_bsr_write,
    make_read=lambda ctx: BSRReadOperation(
        ctx.client_id, ctx.servers, ctx.f, reader_state=ctx.reader_state,
        enforce_bounds=ctx.enforce_bounds, repair=ctx.repair),
    make_reader_state=BSRReaderState,
))

BSR_HISTORY = register(ProtocolSpec(
    name="bsr-history",
    description="MWMR regular, history reads (III-C a)",
    quorum_rule="4f + 1",
    min_servers=bsr_min_servers,
    fault_model=BYZANTINE,
    read_rounds="1",
    make_server=_regular_server,
    make_write=_bsr_write,
    make_read=lambda ctx: HistoryReadOperation(
        ctx.client_id, ctx.servers, ctx.f, reader_state=ctx.reader_state,
        enforce_bounds=ctx.enforce_bounds),
    make_reader_state=BSRReaderState,
    read_phases={1: "get-history"},
    message_phases={"QueryHistory": "get-history"},
))

BSR_2ROUND = register(ProtocolSpec(
    name="bsr-2round",
    description="MWMR regular, slow reads (III-C b)",
    quorum_rule="4f + 1",
    min_servers=bsr_min_servers,
    fault_model=BYZANTINE,
    read_rounds="2",
    make_server=_regular_server,
    make_write=_bsr_write,
    make_read=lambda ctx: TwoRoundReadOperation(
        ctx.client_id, ctx.servers, ctx.f, reader_state=ctx.reader_state,
        enforce_bounds=ctx.enforce_bounds),
    make_reader_state=BSRReaderState,
    read_phases={1: "get-tag-history", 2: "get-value"},
    message_phases={"QueryTagHistory": "get-tag-history",
                    "QueryValue": "get-value"},
))

BCSR = register(ProtocolSpec(
    name="bcsr",
    description="SWMR safe, MDS-coded (Section IV)",
    quorum_rule="5f + 1",
    min_servers=bcsr_min_servers,
    fault_model=BYZANTINE,
    read_rounds="1",
    make_server=lambda ctx: BCSRServer(
        ctx.server_id, ctx.index, ctx.codec,
        initial_value=ctx.initial_value, max_history=ctx.max_history),
    make_write=lambda ctx: BCSRWriteOperation(
        ctx.client_id, ctx.servers, ctx.f, ctx.value, codec=ctx.codec),
    make_read=lambda ctx: BCSRReadOperation(
        ctx.client_id, ctx.servers, ctx.f, codec=ctx.codec,
        initial_value=ctx.initial_value),
    make_codec=make_codec,
    group_spans_fleet=True,
    single_writer=True,
))

RB = register(ProtocolSpec(
    name="rb",
    description="prior work: Bracha-broadcast baseline",
    quorum_rule="3f + 1",
    min_servers=rb_min_servers,
    fault_model=BYZANTINE,
    read_rounds="1+relay",
    make_server=lambda ctx: RBRegisterServer(
        ctx.server_id, ctx.servers, ctx.f, initial_value=ctx.initial_value),
    make_write=lambda ctx: RBWriteOperation(
        ctx.client_id, ctx.servers, ctx.f, ctx.value),
    make_read=lambda ctx: RBReadOperation(
        ctx.client_id, ctx.servers, ctx.f, initial_value=ctx.initial_value),
    snapshot_ok=False,
    peer_links=True,
    message_phases={"RBSend": "put-data", "RBEcho": "rb-echo",
                    "RBReady": "rb-ready"},
))

ABD = register(ProtocolSpec(
    name="abd",
    description="crash-only ABD atomic register",
    quorum_rule="2f + 1",
    min_servers=abd_min_servers,
    fault_model=CRASH,
    read_rounds="2",
    make_server=lambda ctx: ABDServer(
        ctx.server_id, initial_value=ctx.initial_value,
        max_history=ctx.max_history),
    make_write=lambda ctx: ABDWriteOperation(
        ctx.client_id, ctx.servers, ctx.f, ctx.value),
    make_read=lambda ctx: ABDReadOperation(ctx.client_id, ctx.servers, ctx.f),
    read_phases={1: "get-data", 2: "write-back"},
))
