"""``mpr``: the Mostefaoui-Petrolia-Raynal signature-free register.

The first RB-era rival of ROADMAP item 4 [Mostefaoui-Petrolia-Raynal
2016, arXiv:1604.08161]: an atomic register for ``n >= 3f + 1`` servers
with no signatures.  The dissemination/validation core follows the
paper:

* The writer broadcasts its write to every server; each server *echoes*
  the ``(tag, value)`` pair to its peers.
* A server that sees ``f + 1`` echoes for a pair echoes it too
  (amplification, covering servers the writer never reached), and a
  server that sees ``2f + 1`` echoes **validates** the pair: at least
  ``f + 1`` correct servers vouch for it, more than the ``f`` Byzantine
  servers could ever fake, so a never-written value cannot be smuggled
  into storage.  Only validated pairs are stored and acknowledged.
* A read queries every server, waits for ``n - f`` replies, and returns
  the freshest pair vouched for by ``f + 1`` servers; servers relay
  newly validated pairs to readers with pending queries, so a read
  stuck short of witnesses eventually converges.  Before returning, the
  reader *writes back* the chosen pair -- the classic second round that
  upgrades regular-grade reads to atomic ones.

Two liberties are taken to fit the repository's harness, both called
out here because the conformance suite exercises them: the original is
SWMR with writer-local sequence numbers, lifted to MWMR with the same
``get-tag`` round every other register here uses; and echo bookkeeping
is per ``(writer, op_id)`` instance rather than per writer sequence.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.messages import (
    DataReply,
    MprEcho,
    MprWrite,
    PushData,
    PutAck,
    PutData,
    QueryData,
    QueryTag,
    TagReply,
    stored_size,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import (
    kth_highest,
    mpr_min_servers,
    validate_mpr_config,
    witness_threshold,
)
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.protocols.registry import BYZANTINE, ProtocolSpec, register
from repro.types import Envelope, ProcessId


def echo_amplify_threshold(f: int) -> int:
    """Echoes that make a server echo too: ``f + 1``."""
    return f + 1


def validation_threshold(f: int) -> int:
    """Echoes required to validate (store + ack) a pair: ``2f + 1``."""
    return 2 * f + 1


class MPRServer:
    """Echo-validated storage + relay to pending readers."""

    def __init__(self, server_id: ProcessId, peers: Sequence[ProcessId],
                 f: int, initial_value: Any = b"") -> None:
        validate_mpr_config(len(peers), f)
        self.server_id = server_id
        self.peers = list(peers)
        self.f = f
        self.history: List[TaggedValue] = [TaggedValue(TAG_ZERO, initial_value)]
        #: instance key -> pair -> servers whose echo we counted.
        self._echoes: Dict[Any, Dict[TaggedValue, Set[ProcessId]]] = {}
        #: instance key -> pairs we already echoed ourselves.
        self._echoed: Dict[Any, Set[TaggedValue]] = {}
        #: instances we already validated (and acked), to dedupe.
        self._validated: Set[Any] = set()
        #: reader -> op_id of its most recent (assumed pending) query.
        self._pending_readers: Dict[ProcessId, int] = {}

    @property
    def latest(self) -> TaggedValue:
        """The stored pair with the highest tag."""
        return self.history[-1]

    @property
    def max_tag(self) -> Tag:
        """The highest stored tag."""
        return self.history[-1].tag

    def storage_bytes(self) -> int:
        """Bytes of user data stored (full replication)."""
        return stored_size(self.latest.value)

    # -- message handling ---------------------------------------------------
    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Dispatch one incoming message; returns outgoing envelopes."""
        if isinstance(message, QueryTag):
            return [(sender, TagReply(op_id=message.op_id, tag=self.max_tag))]
        if isinstance(message, QueryData):
            self._pending_readers[sender] = message.op_id
            latest = self.latest
            return [(sender, DataReply(op_id=message.op_id, tag=latest.tag,
                                       payload=latest.value))]
        if isinstance(message, MprWrite):
            # Writes must come from the (trusted) writer itself, never a
            # peer: echoing a Byzantine server's fabrication would let it
            # rally the 2f + 1 echoes validation requires.
            if sender in self.peers or not isinstance(message.tag, Tag):
                return []
            return self._echo(self._key(message),
                              TaggedValue(message.tag, message.payload),
                              message)
        if isinstance(message, MprEcho):
            if sender not in self.peers or not isinstance(message.tag, Tag):
                return []
            return self._count_echo(sender, message)
        if isinstance(message, PutData):
            # A reader's write-back (atomicity round).  Clients are
            # trusted here -- the Byzantine budget is all server-side --
            # but a peer must not get a direct-store path around echo
            # validation.
            if sender in self.peers or not isinstance(message.tag, Tag):
                return []
            envelopes = self._store(TaggedValue(message.tag, message.payload))
            envelopes.append(
                (sender, PutAck(op_id=message.op_id, tag=message.tag)))
            return envelopes
        return []

    @staticmethod
    def _key(message: Any) -> Tuple[str, int]:
        return (message.source, message.op_id)

    def _echo(self, key: Any, pair: TaggedValue, message: Any) -> List[Envelope]:
        echoed = self._echoed.setdefault(key, set())
        if pair in echoed:
            return []
        echoed.add(pair)
        relayed = MprEcho(op_id=message.op_id, tag=pair.tag,
                          payload=pair.value, source=message.source)
        return [(peer, relayed) for peer in self.peers]

    def _count_echo(self, sender: ProcessId, message: Any) -> List[Envelope]:
        key = self._key(message)
        pair = TaggedValue(message.tag, message.payload)
        try:
            witnesses = self._echoes.setdefault(key, {}).setdefault(pair, set())
        except TypeError:  # unhashable forged payload
            return []
        witnesses.add(sender)
        envelopes: List[Envelope] = []
        if len(witnesses) >= echo_amplify_threshold(self.f):
            envelopes.extend(self._echo(key, pair, message))
        if (len(witnesses) >= validation_threshold(self.f)
                and key not in self._validated):
            self._validated.add(key)
            envelopes.extend(self._store(pair))
            envelopes.append(
                (message.source, PutAck(op_id=message.op_id, tag=pair.tag)))
        return envelopes

    def _store(self, pair: TaggedValue) -> List[Envelope]:
        """Adopt ``pair`` if fresher; relay it to pending readers."""
        envelopes: List[Envelope] = []
        if pair.tag > self.max_tag:
            self.history.append(pair)
            for reader, read_op_id in self._pending_readers.items():
                envelopes.append(
                    (reader, PushData(op_id=read_op_id, tag=pair.tag,
                                      payload=pair.value))
                )
        return envelopes


class MprWriteOperation(ClientOperation):
    """Write: ``get-tag`` like BSR, then echo-validated dissemination."""

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId],
                 f: int, value: Any) -> None:
        super().__init__(client_id, servers, f)
        validate_mpr_config(self.n, f)
        self.value = value
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-tag" and isinstance(message, TagReply):
            if not isinstance(message.tag, Tag):
                return []
            self._tag_replies.add(sender, message)
            if len(self._tag_replies) < self.quorum:
                return []
            tags = [reply.tag for reply in self._tag_replies.values()]
            self._tag = kth_highest(tags, self.f + 1).next_for(self.client_id)
            self._phase = "put-data"
            # Acks only come back once 2f + 1 echoes validate the pair.
            self.rounds = 2
            return self.broadcast(MprWrite(op_id=self.op_id, tag=self._tag,
                                           payload=self.value,
                                           source=self.client_id))
        if self._phase == "put-data" and isinstance(message, PutAck):
            if message.tag == self._tag:
                self._acks.add(sender, message)
                if len(self._acks) >= self.quorum:
                    self._complete(self._tag)
        return []


class MprReadOperation(ClientOperation):
    """Read: pick the freshest ``f + 1``-witnessed pair, then write it
    back before returning -- MPR's atomicity round."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId],
                 f: int, initial_value: Any = b"") -> None:
        super().__init__(client_id, servers, f)
        validate_mpr_config(self.n, f)
        self.initial_value = initial_value
        self._phase = "get-data"
        #: server -> freshest (tag, value) heard from it (reply or push)
        self._latest: Dict[ProcessId, TaggedValue] = {}
        self._chosen: Optional[TaggedValue] = None
        self._acks = ReplyCollector(self.servers)

    def start(self) -> List[Envelope]:
        self.rounds = 1
        return self.broadcast(QueryData(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message):
            return []
        if self._phase == "get-data":
            if not isinstance(message, (DataReply, PushData)):
                return []
            if not isinstance(message.tag, Tag) or sender not in self.servers:
                return []
            pair = TaggedValue(message.tag, message.payload)
            current = self._latest.get(sender)
            if current is None or pair.tag > current.tag:
                self._latest[sender] = pair
            return self._try_select()
        if self._phase == "write-back" and isinstance(message, PutAck):
            if self._chosen is not None and message.tag == self._chosen.tag:
                self._acks.add(sender, message)
                if len(self._acks) >= self.quorum:
                    self._complete(self._chosen.value)
        return []

    def _try_select(self) -> List[Envelope]:
        if len(self._latest) < self.quorum:
            return []
        # Freshness bar: the (f+1)-th highest tag cannot be Byzantine-forged.
        tags = [pair.tag for pair in self._latest.values()]
        bar = kth_highest(tags, self.f + 1)
        counts: Counter = Counter()
        for pair in self._latest.values():
            try:
                counts[pair] += 1
            except TypeError:
                continue
        threshold = witness_threshold(self.f)
        witnessed = [pair for pair, count in counts.items()
                     if count >= threshold and pair.tag >= bar]
        if not witnessed:
            return []
        best = max(witnessed, key=lambda tv: tv.tag)
        self._chosen = best
        self._tag = best.tag
        self._phase = "write-back"
        self.rounds = 2
        return self.broadcast(PutData(op_id=self.op_id, tag=best.tag,
                                      payload=best.value))


SPEC = register(ProtocolSpec(
    name="mpr",
    description="prior work: MPR signature-free atomic register",
    quorum_rule="3f + 1",
    min_servers=mpr_min_servers,
    fault_model=BYZANTINE,
    read_rounds="2",
    make_server=lambda ctx: MPRServer(
        ctx.server_id, ctx.servers, ctx.f, initial_value=ctx.initial_value),
    make_write=lambda ctx: MprWriteOperation(
        ctx.client_id, ctx.servers, ctx.f, ctx.value),
    make_read=lambda ctx: MprReadOperation(
        ctx.client_id, ctx.servers, ctx.f, initial_value=ctx.initial_value),
    snapshot_ok=False,
    peer_links=True,
    read_phases={1: "get-data", 2: "write-back"},
    message_phases={"MprWrite": "put-data", "MprEcho": "mpr-echo"},
))
