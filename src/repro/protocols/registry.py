"""The protocol registry: one declarative spec per register algorithm.

Historically every algorithm was dispatched by stringly ``if/elif``
chains duplicated across the runtime client, the local cluster, the
deployment spec, the simulator facade, the CLI table and the tracing
phase vocabulary -- six layers to edit in lockstep per protocol.  This
module collapses all of that into a single :class:`ProtocolSpec`: the
client-operation factories, the server factory, the resilience bound,
the fault model, capability flags and display metadata, registered once
via :func:`register` and consumed everywhere through :func:`get_spec`.

Adding a protocol is now one module that builds a spec and registers it
(see ``repro/protocols/rb2.py`` for a complete worked example); the sim,
the asyncio runtime, ``--procs`` deployment, sharding, chaos soaks, the
load rig, ``repro algorithms`` and the conformance suite all pick it up
from the registration alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs import register_phase_names
from repro.types import ProcessId

#: The two failure assumptions a protocol can be proven under.
BYZANTINE, CRASH = "byzantine", "crash"


@dataclass(frozen=True)
class ServerContext:
    """Everything a server factory may need to build one protocol instance.

    ``servers`` is the quorum group the instance belongs to -- the whole
    fleet for plain deployments, the key's consistent-hash group when
    sharded -- so broadcast-based protocols know their peers.
    """

    server_id: ProcessId
    index: int
    servers: Tuple[ProcessId, ...]
    f: int
    initial_value: Any = b""
    max_history: Optional[int] = None
    codec: Any = None


@dataclass(frozen=True)
class OpContext:
    """Everything an operation factory may need to build one client op."""

    client_id: ProcessId
    servers: Tuple[ProcessId, ...]
    f: int
    value: Any = None             #: writes: the value being written
    initial_value: Any = b""
    reader_state: Any = None      #: semi-fast reader hint state, if any
    codec: Any = None             #: erasure codec (coded protocols)
    enforce_bounds: bool = True   #: False for below-the-bound experiments
    repair: bool = False          #: opt-in read repair (BSR)


@dataclass(frozen=True)
class ProtocolSpec:
    """One register algorithm, declaratively.

    Factories receive a :class:`ServerContext` / :class:`OpContext` and
    may ignore any field they do not use; capability flags tell the
    infrastructure what the protocol can do instead of the
    infrastructure guessing from the algorithm's name.
    """

    name: str
    description: str
    #: Display form of the resilience bound, e.g. ``"4f + 1"``.
    quorum_rule: str
    min_servers: Callable[[int], int]
    #: :data:`BYZANTINE` or :data:`CRASH`.
    fault_model: str
    #: Display form of the read round count, e.g. ``"1 (one-shot)"``.
    read_rounds: str
    make_server: Callable[[ServerContext], Any]
    make_write: Callable[[OpContext], Any]
    make_read: Callable[[OpContext], Any]
    #: ``(n, f) -> codec`` for erasure-coded protocols; the built codec
    #: reaches both factories via their contexts.
    make_codec: Optional[Callable[[int, int], Any]] = None
    #: ``initial_value -> state`` for semi-fast reader hint state that
    #: persists across one reader's operations on one register.
    make_reader_state: Optional[Callable[[Any], Any]] = None
    #: Server state survives a snapshot/restore round-trip.
    snapshot_ok: bool = True
    #: May host many named registers behind one server (sharding needs it).
    namespaced_ok: bool = True
    #: Supported by the asyncio runtime and real deployments (not sim-only).
    runtime_ok: bool = True
    #: Servers exchange messages with each other (needs a peer mesh and
    #: pinned ports in multi-process deployments).
    peer_links: bool = False
    #: Sharded quorum groups must span the whole fleet (coded protocols
    #: whose codec dimension is derived from ``n``).
    group_spans_fleet: bool = False
    #: Only safe with a single writer (SWMR).
    single_writer: bool = False
    #: Client round -> phase name, merged into the tracing vocabulary.
    write_phases: Mapping[int, str] = field(
        default_factory=lambda: {1: "get-tag", 2: "put-data"})
    read_phases: Mapping[int, str] = field(
        default_factory=lambda: {1: "get-data"})
    #: Request message type name -> phase name (server-side histograms).
    message_phases: Mapping[str, str] = field(default_factory=dict)

    def validate_config(self, n: int, f: int) -> None:
        """Raise :class:`ConfigurationError` unless ``n`` meets the bound."""
        floor = self.min_servers(f)
        if n < floor:
            raise ConfigurationError(
                f"{self.name} requires n >= {self.quorum_rule} = {floor} "
                f"for f={f}, got n={n}"
            )


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Register ``spec`` (returns it, so modules can keep a handle).

    Registration also merges the spec's phase vocabulary into the
    tracing tables, so client spans and server frame histograms label
    the new protocol's rounds without the obs layer knowing about it.
    """
    if spec.fault_model not in (BYZANTINE, CRASH):
        raise ConfigurationError(
            f"fault model {spec.fault_model!r} must be "
            f"{BYZANTINE!r} or {CRASH!r}"
        )
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"protocol {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    register_phase_names(spec.name, spec.write_phases, spec.read_phases,
                         spec.message_phases)
    return spec


def get_spec(name: str) -> ProtocolSpec:
    """Look up a registered protocol, with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choose from {names()}"
        ) from None


def names() -> Tuple[str, ...]:
    """Every registered protocol name, in registration order."""
    return tuple(_REGISTRY)


def runtime_names() -> Tuple[str, ...]:
    """Protocols the asyncio runtime (and real deployments) support."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.runtime_ok)


def specs() -> Tuple[ProtocolSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())
