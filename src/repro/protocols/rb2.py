"""``rb2``: the register baseline over Imbs-Raynal 2-step broadcast.

The second RB-era rival of ROADMAP item 4 [Imbs-Raynal 2015,
arXiv:1510.06882]: same register construction as the Bracha-based ``rb``
baseline -- a BSR-style ``get-tag`` phase, then the data disseminated by
reliable broadcast among the servers, with delivery-time relay to
pending readers -- but the broadcast itself is the 2-step INIT/WITNESS
protocol.  That removes one server-to-server hop from every write at
the cost of a much steeper resilience bound: ``n >= 5f + 1`` instead of
Bracha's ``3f + 1``.  The scorecard experiment (E23) measures exactly
this trade against the paper's broadcast-free registers.

This module is also the registry's worked example: server, operations
and :class:`~repro.protocols.registry.ProtocolSpec` in one file, plugged
into every layer (sim, asyncio runtime, sharding, chaos, load rig, CLI)
by the single :func:`~repro.protocols.registry.register` call at the
bottom.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.broadcast.imbs_raynal import IR2Instance
from repro.core.messages import (
    DataReply,
    PushData,
    PutAck,
    QueryData,
    QueryTag,
    Rb2Send,
    Rb2Witness,
    TagReply,
    stored_size,
)
from repro.core.operation import ClientOperation, ReplyCollector
from repro.core.quorum import (
    kth_highest,
    rb2_min_servers,
    validate_rb2_config,
    witness_threshold,
)
from repro.core.tags import TAG_ZERO, Tag, TaggedValue
from repro.protocols.registry import BYZANTINE, ProtocolSpec, register
from repro.types import Envelope, ProcessId


class Rb2RegisterServer:
    """BSR-like storage + 2-step broadcast participation + relay."""

    def __init__(self, server_id: ProcessId, peers: Sequence[ProcessId],
                 f: int, initial_value: Any = b"") -> None:
        validate_rb2_config(len(peers), f)
        self.server_id = server_id
        self.peers = list(peers)
        self.f = f
        self.history: List[TaggedValue] = [TaggedValue(TAG_ZERO, initial_value)]
        self.broadcast = IR2Instance(server_id, self.peers, f)
        #: reader -> op_id of its most recent (assumed pending) query.
        self._pending_readers: Dict[ProcessId, int] = {}
        #: broadcast instances we already acked, to dedupe deliveries.
        self._acked: Set[Any] = set()

    @property
    def latest(self) -> TaggedValue:
        """The stored pair with the highest tag."""
        return self.history[-1]

    @property
    def max_tag(self) -> Tag:
        """The highest stored tag."""
        return self.history[-1].tag

    def storage_bytes(self) -> int:
        """Bytes of user data stored (full replication, like BSR)."""
        return stored_size(self.latest.value)

    # -- message handling ---------------------------------------------------
    def handle(self, sender: ProcessId, message: Any) -> List[Envelope]:
        """Dispatch one incoming message; returns outgoing envelopes."""
        if isinstance(message, QueryTag):
            return [(sender, TagReply(op_id=message.op_id, tag=self.max_tag))]
        if isinstance(message, QueryData):
            self._pending_readers[sender] = message.op_id
            latest = self.latest
            return [(sender, DataReply(op_id=message.op_id, tag=latest.tag,
                                       payload=latest.value))]
        if isinstance(message, Rb2Send):
            # INIT must come from the (trusted) writer itself; a Byzantine
            # *server* forging one would otherwise rally enough witnesses
            # to smuggle a never-written value into storage.
            if sender in self.peers:
                return []
            return self._rb_outputs(
                message, self.broadcast.on_init(self._key(message),
                                                (message.tag, message.payload)))
        if isinstance(message, Rb2Witness):
            return self._rb_outputs(
                message, self.broadcast.on_witness(
                    self._key(message), (message.tag, message.payload), sender))
        return []

    @staticmethod
    def _key(message: Any) -> Tuple[str, int]:
        return (message.source, message.op_id)

    def _rb_outputs(self, message: Any, outputs) -> List[Envelope]:
        envelopes: List[Envelope] = []
        for action, arg1, arg2 in outputs:
            if action == "broadcast":
                payload = arg2
                relayed = Rb2Witness(op_id=message.op_id, tag=payload[0],
                                     payload=payload[1], source=message.source)
                envelopes.extend((peer, relayed) for peer in self.peers)
            elif action == "deliver":
                tag, value = arg1
                envelopes.extend(self._deliver(message, tag, value))
        return envelopes

    def _deliver(self, message: Any, tag: Tag, value: Any) -> List[Envelope]:
        envelopes: List[Envelope] = []
        if tag > self.max_tag:
            self.history.append(TaggedValue(tag, value))
            # Relay: push the fresh pair to every reader with a pending
            # query so stuck reads can converge on f + 1 witnesses.
            for reader, read_op_id in self._pending_readers.items():
                envelopes.append(
                    (reader, PushData(op_id=read_op_id, tag=tag, payload=value))
                )
        key = self._key(message)
        if key not in self._acked:
            self._acked.add(key)
            envelopes.append(
                (message.source, PutAck(op_id=message.op_id, tag=tag))
            )
        return envelopes


class Rb2WriteOperation(ClientOperation):
    """Write: ``get-tag`` like BSR, then 2-step-broadcast the data."""

    kind = "write"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId],
                 f: int, value: Any) -> None:
        super().__init__(client_id, servers, f)
        validate_rb2_config(self.n, f)
        self.value = value
        self._phase = "idle"
        self._tag_replies = ReplyCollector(self.servers)
        self._acks = ReplyCollector(self.servers)
        self._tag: Optional[Tag] = None

    def start(self) -> List[Envelope]:
        self._phase = "get-tag"
        self.rounds = 1
        return self.broadcast(QueryTag(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if not self.accepts(message) or self.done:
            return []
        if self._phase == "get-tag" and isinstance(message, TagReply):
            if not isinstance(message.tag, Tag):
                return []
            self._tag_replies.add(sender, message)
            if len(self._tag_replies) < self.quorum:
                return []
            tags = [reply.tag for reply in self._tag_replies.values()]
            self._tag = kth_highest(tags, self.f + 1).next_for(self.client_id)
            self._phase = "put-data"
            # Dissemination happens server-side: still the client's second
            # round, but acks only come back after one WITNESS wave (one
            # hop fewer than Bracha's ECHO + READY).
            self.rounds = 2
            return self.broadcast(Rb2Send(op_id=self.op_id, tag=self._tag,
                                          payload=self.value,
                                          source=self.client_id))
        if self._phase == "put-data" and isinstance(message, PutAck):
            if message.tag == self._tag:
                self._acks.add(sender, message)
                if len(self._acks) >= self.quorum:
                    self._complete(self._tag)
        return []


class Rb2ReadOperation(ClientOperation):
    """Read: wait for a witnessed pair at least as fresh as the
    ``(f+1)``-th highest tag; relayed pushes may be needed to get there."""

    kind = "read"

    def __init__(self, client_id: ProcessId, servers: Sequence[ProcessId],
                 f: int, initial_value: Any = b"") -> None:
        super().__init__(client_id, servers, f)
        validate_rb2_config(self.n, f)
        self.initial_value = initial_value
        #: server -> freshest (tag, value) heard from it (reply or push)
        self._latest: Dict[ProcessId, TaggedValue] = {}

    def start(self) -> List[Envelope]:
        self.rounds = 1
        return self.broadcast(QueryData(op_id=self.op_id))

    def on_reply(self, sender: ProcessId, message: Any) -> List[Envelope]:
        if self.done or not self.accepts(message):
            return []
        if not isinstance(message, (DataReply, PushData)):
            return []
        if not isinstance(message.tag, Tag) or sender not in self.servers:
            return []
        pair = TaggedValue(message.tag, message.payload)
        current = self._latest.get(sender)
        if current is None or pair.tag > current.tag:
            self._latest[sender] = pair
        self._try_finish()
        return []

    def _try_finish(self) -> None:
        if len(self._latest) < self.quorum:
            return
        # Freshness bar: the (f+1)-th highest tag cannot be Byzantine-forged.
        tags = [pair.tag for pair in self._latest.values()]
        bar = kth_highest(tags, self.f + 1)
        counts: Counter = Counter()
        for pair in self._latest.values():
            try:
                counts[pair] += 1
            except TypeError:
                continue
        threshold = witness_threshold(self.f)
        witnessed = [pair for pair, count in counts.items()
                     if count >= threshold and pair.tag >= bar]
        if witnessed:
            best = max(witnessed, key=lambda tv: tv.tag)
            self._tag = best.tag
            self._complete(best.value)


SPEC = register(ProtocolSpec(
    name="rb2",
    description="prior work: 2-step-broadcast baseline",
    quorum_rule="5f + 1",
    min_servers=rb2_min_servers,
    fault_model=BYZANTINE,
    read_rounds="1+relay",
    make_server=lambda ctx: Rb2RegisterServer(
        ctx.server_id, ctx.servers, ctx.f, initial_value=ctx.initial_value),
    make_write=lambda ctx: Rb2WriteOperation(
        ctx.client_id, ctx.servers, ctx.f, ctx.value),
    make_read=lambda ctx: Rb2ReadOperation(
        ctx.client_id, ctx.servers, ctx.f, initial_value=ctx.initial_value),
    snapshot_ok=False,
    peer_links=True,
    message_phases={"Rb2Send": "put-data", "Rb2Witness": "rb2-witness"},
))
