"""Protocol plugin registry -- every register algorithm, declaratively.

Importing this package registers the built-in protocols (``bsr``,
``bsr-history``, ``bsr-2round``, ``bcsr``, ``rb``, ``abd``) and the
RB-era rival plugins (``rb2``, ``mpr``).  Everything else -- sim,
asyncio runtime, ``--procs`` deployment, sharding, chaos, load rig,
CLI -- consumes the registry through :func:`get_spec` and friends
instead of comparing algorithm strings.
"""

from repro.protocols.registry import (
    BYZANTINE,
    CRASH,
    OpContext,
    ProtocolSpec,
    ServerContext,
    get_spec,
    names,
    register,
    runtime_names,
    specs,
)

# Importing the implementation modules is what registers them.
from repro.protocols import builtin as _builtin  # noqa: F401
from repro.protocols import mpr as _mpr  # noqa: F401
from repro.protocols import rb2 as _rb2  # noqa: F401

__all__ = [
    "BYZANTINE",
    "CRASH",
    "OpContext",
    "ProtocolSpec",
    "ServerContext",
    "get_spec",
    "names",
    "register",
    "runtime_names",
    "specs",
]
