"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands:

* ``demo``      -- run a tiny write/read execution of any algorithm.
* ``scenario``  -- replay one of the paper's proof executions (t3, t5, t6).
* ``workload``  -- run a synthetic workload and print latency statistics.
* ``chaos``     -- run a live TCP workload under a nemesis fault schedule.
* ``algorithms`` -- list the implemented algorithms and their bounds.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.chaos import SCHEDULES, run_soak

from repro.byzantine.scenarios import (
    theorem3_regularity_violation,
    theorem5_bsr_below_bound,
    theorem6_bcsr_below_bound,
)
from repro.consistency import check_regularity, check_safety
from repro.core.register import ALGORITHMS, RegisterSystem
from repro.metrics import format_table, summarize_trace
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.modelcheck import ModelChecker
from repro.modelcheck.scenarios import all_quorum_pairs, bsr_read_stage
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule


def _cmd_algorithms(args: argparse.Namespace) -> int:
    rows = [
        ("bsr", "4f + 1", "1", "MWMR safe (Section III)"),
        ("bsr-history", "4f + 1", "1", "MWMR regular, history reads (III-C a)"),
        ("bsr-2round", "4f + 1", "2", "MWMR regular, slow reads (III-C b)"),
        ("bcsr", "5f + 1", "1", "SWMR safe, MDS-coded (Section IV)"),
        ("rb", "3f + 1", "1+relay", "prior work: reliable-broadcast baseline"),
        ("abd", "2f + 1", "2", "crash-only ABD atomic register"),
    ]
    print(format_table(("algorithm", "min servers", "read rounds", "summary"), rows))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    system = RegisterSystem(args.algorithm, f=args.f, seed=args.seed,
                            delay_model=UniformDelay(0.5, 2.0))
    system.write(b"paper", writer=0, at=0.0)
    system.write(b"rocks", writer=1, at=10.0)
    read = system.read(reader=0, at=20.0)
    trace = system.run()
    print(trace.format())
    print(f"\nread returned: {read.value!r} in {read.rounds} round(s), "
          f"{read.latency:.2f}s simulated")
    print(check_safety(trace))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.name == "t3":
        result = theorem3_regularity_violation(args.algorithm or "bsr",
                                               seed=args.seed)
    elif args.name == "t5":
        result = theorem5_bsr_below_bound(n=args.n, seed=args.seed)
    else:
        result = theorem6_bcsr_below_bound(n=args.n, seed=args.seed)
    print(result.description)
    print(result.trace.format())
    print(f"\nread returned: {result.read_value!r}")
    print(result.safety)
    print(result.regularity)
    for violation in result.safety.violations + result.regularity.violations:
        print(f"  - {violation}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(num_ops=args.ops, read_ratio=args.read_ratio,
                        value_size=args.value_size,
                        mean_interarrival=args.interarrival)
    rng = SimRng(args.seed, "cli-workload")
    schedule = generate_schedule(spec, rng)
    system = RegisterSystem(args.algorithm, f=args.f, seed=args.seed,
                            num_writers=spec.num_writers,
                            num_readers=spec.num_readers,
                            delay_model=UniformDelay(0.5, 2.0))
    apply_schedule(system, schedule)
    trace = system.run()
    summaries = summarize_trace(trace)
    rows = []
    for kind, summary in summaries.items():
        lat = summary.latency
        rows.append((kind, lat.count, f"{lat.mean:.3f}", f"{lat.p50:.3f}",
                     f"{lat.p99:.3f}", f"{summary.mean_rounds:.2f}"))
    print(format_table(
        ("op", "count", "mean(s)", "p50(s)", "p99(s)", "rounds"), rows,
        title=f"{args.algorithm}: {args.ops} ops, {args.read_ratio:.1%} reads",
    ))
    safety = check_safety(trace)
    print(safety)
    return 0 if safety.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    result = asyncio.run(run_soak(
        algorithm=args.algorithm, f=args.f, schedule=args.schedule,
        ops=args.ops, read_ratio=args.read_ratio,
        value_size=args.value_size, seed=args.seed, period=args.period,
        timeout=args.timeout,
    ))
    print(f"nemesis schedule {args.schedule!r} (seed {args.seed}):")
    for event in result.nemesis_events or ["  (no faults)"]:
        print(f"  {event}")
    if result.fault_counts:
        injected = ", ".join(f"{kind}={count}" for kind, count
                             in sorted(result.fault_counts.items()))
        print(f"frames faulted: {injected}")
    rows = []
    for kind, summary in result.latency_summary().items():
        lat = summary.latency
        rows.append((kind, lat.count, f"{lat.mean * 1000:.1f}",
                     f"{lat.p50 * 1000:.1f}", f"{lat.p99 * 1000:.1f}"))
    print(format_table(
        ("op", "count", "mean(ms)", "p50(ms)", "p99(ms)"), rows,
        title=f"{args.algorithm} under {args.schedule}: "
              f"{result.ops_completed} ops in {result.wall_time:.1f}s",
    ))
    for client_id, stats in sorted(result.client_stats.items()):
        interesting = {k: v for k, v in sorted(stats.items()) if v}
        print(f"  {client_id}: {interesting}")
    for error in result.errors:
        print(f"  LIVENESS FAILURE: {error}")
    print(result.safety)
    return 0 if result.ok else 1


def _cmd_modelcheck(args: argparse.Namespace) -> int:
    n, f = args.n, args.f
    print(f"model-checking the BSR read stage at n={n}, f={f} "
          f"(bound: n >= {4 * f + 1})")
    rows = []
    violating = 0
    for w1, w2 in all_quorum_pairs(n, f):
        factory, predicate = bsr_read_stage(n, f, w1, w2)
        checker = ModelChecker(factory, predicate, max_states=args.max_states)
        if args.exhaustive:
            report = checker.verify()
            outcome = ("OK" if report.ok else "VIOLATED")
            if report.truncated:
                outcome += " (truncated)"
            detail = f"{report.states_explored} states"
        else:
            found = checker.find_violation()
            outcome = "VIOLATION FOUND" if found else "safe"
            detail = found[0] if found else ""
        if "VIOLAT" in outcome:
            violating += 1
        rows.append((str(w1), str(w2), outcome, detail))
    print(format_table(("W1 quorum", "W2 quorum", "outcome", "detail"), rows))
    print(f"\n{violating} of {len(rows)} quorum pairs admit a violation")
    return 0 if (violating == 0) == (n >= 4 * f + 1) else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semi-fast Byzantine-tolerant shared registers "
                    "(ICDCS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list implemented algorithms")

    demo = sub.add_parser("demo", help="run a tiny write/read execution")
    demo.add_argument("--algorithm", default="bsr", choices=ALGORITHMS)
    demo.add_argument("--f", type=int, default=1)
    demo.add_argument("--seed", type=int, default=0)

    scenario = sub.add_parser("scenario", help="replay a proof execution")
    scenario.add_argument("name", choices=("t3", "t5", "t6"))
    scenario.add_argument("--algorithm", default=None,
                          help="register variant for t3 (bsr / bsr-history / "
                               "bsr-2round)")
    scenario.add_argument("--n", type=int, default=None,
                          help="server count for t5/t6 (default: below the bound)")
    scenario.add_argument("--seed", type=int, default=0)

    workload = sub.add_parser("workload", help="run a synthetic workload")
    workload.add_argument("--algorithm", default="bsr", choices=ALGORITHMS)
    workload.add_argument("--f", type=int, default=1)
    workload.add_argument("--ops", type=int, default=200)
    workload.add_argument("--read-ratio", type=float, default=0.9)
    workload.add_argument("--value-size", type=int, default=64)
    workload.add_argument("--interarrival", type=float, default=1.0)
    workload.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="run a workload on a live TCP cluster under a nemesis "
             "fault schedule and check safety + liveness",
    )
    from repro.runtime.client import CLIENT_ALGORITHMS
    chaos.add_argument("--algorithm", default="bsr",
                       choices=CLIENT_ALGORITHMS)
    chaos.add_argument("--schedule", default="combo", choices=SCHEDULES)
    chaos.add_argument("--f", type=int, default=1)
    chaos.add_argument("--ops", type=int, default=40)
    chaos.add_argument("--read-ratio", type=float, default=0.6)
    chaos.add_argument("--value-size", type=int, default=32)
    chaos.add_argument("--period", type=float, default=0.8,
                       help="seconds per nemesis fault window")
    chaos.add_argument("--timeout", type=float, default=15.0,
                       help="per-operation liveness timeout")
    chaos.add_argument("--seed", type=int, default=0)

    modelcheck = sub.add_parser(
        "modelcheck",
        help="exhaustively explore read-stage schedules (Theorem 5)",
    )
    modelcheck.add_argument("--n", type=int, default=4,
                            help="server count (default 4 = below the bound)")
    modelcheck.add_argument("--f", type=int, default=1)
    modelcheck.add_argument("--exhaustive", action="store_true",
                            help="full verification instead of directed search")
    modelcheck.add_argument("--max-states", type=int, default=100_000)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "algorithms": _cmd_algorithms,
        "demo": _cmd_demo,
        "scenario": _cmd_scenario,
        "workload": _cmd_workload,
        "chaos": _cmd_chaos,
        "modelcheck": _cmd_modelcheck,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
