"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands:

* ``demo``      -- run a tiny write/read execution of any algorithm.
* ``scenario``  -- replay one of the paper's proof executions (t3, t5, t6).
* ``workload``  -- run a synthetic workload and print latency statistics.
* ``chaos``     -- run a live TCP workload under a nemesis fault schedule
  (``--procs`` runs it against real OS processes).
* ``node``      -- serve exactly one register node in this process.
* ``cluster``   -- serve / inspect / signal a process-per-node cluster
  (``status --metrics`` adds scraped per-phase latency histograms).
* ``metrics``   -- scrape a served cluster's metric registries and dump
  them as Prometheus text exposition or JSON (``dump --watch`` appends
  a JSON-lines snapshot time series with size-based rotation;
  ``serve`` runs the HTTP exporter sidecar).
* ``trace``     -- record client span files against a served cluster,
  then stitch them with the nodes' flight-recorder dumps into causal
  per-operation timelines (``show`` / ``slow``).
* ``top``       -- live terminal dashboard: per-node health, frame
  rates and windowed per-phase latency percentiles.
* ``load``      -- open-loop multi-process load generator with honest
  latency, merged per-worker histograms and an SLO sweep
  (``load-worker`` is its internal per-process entry point).
* ``keys``      -- inspect a sharded keyspace: placement stats, the
  group serving one key, and rebalance dry-runs.
* ``algorithms`` -- list the implemented algorithms and their bounds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal as signal_module
import sys
from typing import Dict, List, Optional

from repro.chaos import PROCESS_SCHEDULES, SCHEDULES, run_soak

from repro.byzantine.scenarios import (
    theorem3_regularity_violation,
    theorem5_bsr_below_bound,
    theorem6_bcsr_below_bound,
)
from repro.consistency import check_regularity, check_safety
from repro.core.register import ALGORITHMS, RegisterSystem
from repro.metrics import format_table, summarize_trace
from repro.sim.delays import UniformDelay
from repro.sim.rng import SimRng
from repro.modelcheck import ModelChecker
from repro.modelcheck.scenarios import all_quorum_pairs, bsr_read_stage
from repro.workloads import WorkloadSpec, apply_schedule, generate_schedule


def _cmd_algorithms(args: argparse.Namespace) -> int:
    # Generated from the protocol registry: registering a plugin is all
    # it takes to appear here (and everywhere else).
    from repro.protocols import specs

    rows = [
        (spec.name, spec.quorum_rule, f"n >= {spec.min_servers(1)} @ f=1",
         spec.read_rounds, spec.fault_model, spec.description)
        for spec in specs()
    ]
    print(format_table(("algorithm", "min servers", "example", "read rounds",
                        "faults", "summary"), rows))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    system = RegisterSystem(args.algorithm, f=args.f, seed=args.seed,
                            delay_model=UniformDelay(0.5, 2.0))
    system.write(b"paper", writer=0, at=0.0)
    system.write(b"rocks", writer=1, at=10.0)
    read = system.read(reader=0, at=20.0)
    trace = system.run()
    print(trace.format())
    print(f"\nread returned: {read.value!r} in {read.rounds} round(s), "
          f"{read.latency:.2f}s simulated")
    print(check_safety(trace))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.name == "t3":
        result = theorem3_regularity_violation(args.algorithm or "bsr",
                                               seed=args.seed)
    elif args.name == "t5":
        result = theorem5_bsr_below_bound(n=args.n, seed=args.seed)
    else:
        result = theorem6_bcsr_below_bound(n=args.n, seed=args.seed)
    print(result.description)
    print(result.trace.format())
    print(f"\nread returned: {result.read_value!r}")
    print(result.safety)
    print(result.regularity)
    for violation in result.safety.violations + result.regularity.violations:
        print(f"  - {violation}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(num_ops=args.ops, read_ratio=args.read_ratio,
                        value_size=args.value_size,
                        mean_interarrival=args.interarrival)
    rng = SimRng(args.seed, "cli-workload")
    schedule = generate_schedule(spec, rng)
    system = RegisterSystem(args.algorithm, f=args.f, seed=args.seed,
                            num_writers=spec.num_writers,
                            num_readers=spec.num_readers,
                            delay_model=UniformDelay(0.5, 2.0))
    apply_schedule(system, schedule)
    trace = system.run()
    summaries = summarize_trace(trace)
    rows = []
    for kind, summary in summaries.items():
        lat = summary.latency
        rows.append((kind, lat.count, f"{lat.mean:.3f}", f"{lat.p50:.3f}",
                     f"{lat.p99:.3f}", f"{summary.mean_rounds:.2f}"))
    print(format_table(
        ("op", "count", "mean(s)", "p50(s)", "p99(s)", "rounds"), rows,
        title=f"{args.algorithm}: {args.ops} ops, {args.read_ratio:.1%} reads",
    ))
    safety = check_safety(trace)
    print(safety)
    return 0 if safety.ok else 1


def _maybe_uvloop(args: argparse.Namespace) -> None:
    """Honour ``--uvloop``: install when available, fall back loudly."""
    if getattr(args, "uvloop", False):
        from repro.runtime.loop import install_uvloop

        if not install_uvloop(require=False):
            print("uvloop not installed; using the stdlib asyncio loop",
                  file=sys.stderr)


def _cmd_chaos(args: argparse.Namespace) -> int:
    _maybe_uvloop(args)
    client_kwargs = ({"max_inflight": args.max_inflight}
                     if args.max_inflight is not None else None)
    result = asyncio.run(run_soak(
        algorithm=args.algorithm, f=args.f, schedule=args.schedule,
        ops=args.ops, read_ratio=args.read_ratio,
        value_size=args.value_size, seed=args.seed, period=args.period,
        timeout=args.timeout, procs=args.procs,
        max_history=args.max_history, concurrency=args.concurrency,
        keys=args.keys, zipf_s=args.zipf_s,
        client_kwargs=client_kwargs,
        timeseries_path=args.timeseries,
        timeseries_interval=args.timeseries_interval,
    ))
    backend = "OS processes" if result.procs else "in-process cluster"
    print(f"nemesis schedule {args.schedule!r} (seed {args.seed}, "
          f"{backend}):")
    for event in result.nemesis_events or ["  (no faults)"]:
        print(f"  {event}")
    if result.fault_counts:
        injected = ", ".join(f"{kind}={count}" for kind, count
                             in sorted(result.fault_counts.items()))
        print(f"frames faulted: {injected}")
    rows = []
    for kind, summary in result.latency_summary().items():
        lat = summary.latency
        rows.append((kind, lat.count, f"{lat.mean * 1000:.1f}",
                     f"{lat.p50 * 1000:.1f}", f"{lat.p99 * 1000:.1f}"))
    print(format_table(
        ("op", "count", "mean(ms)", "p50(ms)", "p99(ms)"), rows,
        title=f"{args.algorithm} under {args.schedule}: "
              f"{result.ops_completed} ops in {result.wall_time:.1f}s",
    ))
    phase_rows = []
    for op, phases in sorted(result.phase_summary().items()):
        for phase, lat in sorted(phases.items()):
            phase_rows.append((op, phase, lat.count,
                               f"{lat.mean * 1000:.1f}",
                               f"{lat.p50 * 1000:.1f}",
                               f"{lat.p95 * 1000:.1f}",
                               f"{lat.p99 * 1000:.1f}"))
    if phase_rows:
        print(format_table(
            ("op", "phase", "count", "mean(ms)", "p50(ms)", "p95(ms)",
             "p99(ms)"), phase_rows,
            title="per-phase latency (live histograms)"))
    outcomes = result.outcome_counts()
    if outcomes:
        rendered = "; ".join(
            f"{op} " + ",".join(f"{o}={c}"
                                for o, c in sorted(counts.items()))
            for op, counts in sorted(outcomes.items()))
        print(f"op outcomes: {rendered}")
    for client_id, stats in sorted(result.client_stats.items()):
        interesting = {k: v for k, v in sorted(stats.items()) if v}
        print(f"  {client_id}: {interesting}")
    if result.snapshot_bytes:
        total = sum(result.snapshot_bytes.values())
        print(f"snapshots: {total} bytes across "
              f"{len(result.snapshot_bytes)} nodes")
    for error in result.errors:
        print(f"  LIVENESS FAILURE: {error}")
    print(result.safety)
    return 0 if result.ok else 1


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.deploy import ClusterSpec, serve_node

    _maybe_uvloop(args)
    spec = ClusterSpec.from_file(args.spec)
    try:
        asyncio.run(serve_node(spec, args.node, port=args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def _parse_signal(name: str) -> int:
    """``KILL`` / ``SIGKILL`` / ``9`` -> the signal number."""
    if name.isdigit():
        return int(name)
    upper = name.upper()
    if not upper.startswith("SIG"):
        upper = "SIG" + upper
    try:
        return getattr(signal_module, upper)
    except AttributeError:
        raise SystemExit(f"unknown signal {name!r}")


def _print_cluster_status(rows) -> None:
    print(format_table(("node", "pid", "address", "state", "restarts"), rows))


def _phases_from_snapshot(snapshot: Dict,
                          node: Optional[str] = None) -> Dict[str, Dict]:
    """Per-phase latency digests from a registry snapshot.

    Summarizes every ``node_phase_seconds`` histogram (optionally
    filtered to one ``node`` label) into
    ``{phase: {count, p50, p95, p99, mean}}`` -- the shape
    ``cluster status --json --metrics`` reports per node.
    """
    from repro.obs import summarize_histogram_snapshot

    phases: Dict[str, Dict] = {}
    for entry in snapshot.get("histograms", ()):
        if entry.get("name") != "node_phase_seconds":
            continue
        labels = entry.get("labels", {})
        if node is not None and labels.get("node") != node:
            continue
        summary = summarize_histogram_snapshot(entry)
        if summary.count:
            phases[labels.get("phase", "")] = {
                "count": summary.count,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
            }
    return phases


def _state_addresses(state: Dict) -> Dict[str, tuple]:
    """``{node: (host, port)}`` for every bound node in a state file."""
    return {node: (info["host"], info["port"])
            for node, info in sorted(state["nodes"].items())
            if info.get("port")}


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.deploy import (
        ClusterSpec,
        ClusterSupervisor,
        PING_FAILURES,
        default_state_path,
        health_ping,
        read_state,
        stats_ping,
    )

    spec = ClusterSpec.from_file(args.spec)
    state_path = args.state or default_state_path(spec, args.spec)

    if args.cluster_command == "serve":
        _maybe_uvloop(args)

        async def serve() -> None:
            supervisor = ClusterSupervisor(spec, spec_path=args.spec,
                                           state_path=state_path)
            await supervisor.start()
            rows = [(s["node"], s["pid"],
                     "{}:{}".format(*s["address"]), "up", s["restarts"])
                    for s in supervisor.status()]
            _print_cluster_status(rows)
            print(f"state file: {supervisor.state_path}")
            try:
                if args.duration > 0:
                    await asyncio.sleep(args.duration)
                else:
                    await asyncio.Event().wait()  # until Ctrl-C
            finally:
                await supervisor.stop()

        try:
            asyncio.run(serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return 0

    if args.cluster_command == "status":
        state = read_state(state_path)
        auth = spec.authenticator()

        async def probe() -> List[Dict]:
            nodes = []
            for node, info in sorted(state["nodes"].items()):
                pid = info.get("pid")
                alive = False
                if pid:
                    try:
                        os.kill(pid, 0)
                        alive = True
                    except (OSError, ProcessLookupError):
                        alive = False
                health = None
                if info.get("port"):
                    try:
                        ack = await health_ping((info["host"], info["port"]),
                                                auth, timeout=args.timeout)
                        health = {
                            "history_len": ack.history_len,
                            "frames": ack.frames,
                            "throttled": ack.throttled,
                            "snapshot_age": ack.snapshot_age,
                        }
                        if getattr(ack, "keys_resident", -1) >= 0:
                            # Sharded nodes report RegisterTable occupancy.
                            health["keys_resident"] = ack.keys_resident
                            health["keys_archived"] = ack.keys_archived
                            health["rehydrations"] = ack.rehydrations
                    except PING_FAILURES:
                        health = None
                entry = {
                    "node": node,
                    "pid": pid,
                    "address": f"{info.get('host')}:{info.get('port')}",
                    "state": ("healthy" if health is not None
                              else "running" if alive else "down"),
                    "restarts": info.get("restarts", 0),
                    "health": health,
                }
                if args.metrics and health is not None:
                    try:
                        ack = await stats_ping((info["host"], info["port"]),
                                               auth, timeout=args.timeout)
                        entry["phases"] = _phases_from_snapshot(
                            ack.metrics or {}, node=node)
                    except PING_FAILURES:
                        entry["phases"] = {}
                nodes.append(entry)
            return nodes

        nodes = asyncio.run(probe())
        ok = all(entry["state"] == "healthy" for entry in nodes)
        if args.json:
            print(json.dumps({"ok": ok, "nodes": nodes}, indent=2,
                             sort_keys=True))
            return 0 if ok else 1
        _print_cluster_status([
            (entry["node"], entry["pid"], entry["address"], entry["state"],
             entry["restarts"])
            for entry in nodes
        ])
        for entry in nodes:
            health = entry.get("health")
            if health is not None:
                age = health["snapshot_age"]
                rendered_age = f"{age:.1f}s" if age >= 0 else "none"
                occupancy = ""
                if "keys_resident" in health:
                    occupancy = (
                        f" keys={health['keys_resident']}"
                        f"(+{health['keys_archived']} demoted)"
                        f" rehydrations={health['rehydrations']}")
                print(f"  {entry['node']}: history={health['history_len']} "
                      f"frames={health['frames']} "
                      f"throttled={health['throttled']} "
                      f"snapshot_age={rendered_age}{occupancy}")
            for phase, digest in sorted(entry.get("phases", {}).items()):
                print(f"    {phase}: count={digest['count']} "
                      f"p50={digest['p50'] * 1000:.1f}ms "
                      f"p95={digest['p95'] * 1000:.1f}ms "
                      f"p99={digest['p99'] * 1000:.1f}ms")
        return 0 if ok else 1

    # kill
    state = read_state(state_path)
    info = state["nodes"].get(args.node)
    if info is None or not info.get("pid"):
        print(f"node {args.node!r} not found in {state_path}")
        return 1
    signum = _parse_signal(args.signal)
    os.kill(info["pid"], signum)
    print(f"sent signal {signum} to node {args.node} (pid {info['pid']})")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.deploy import (
        ClusterSpec,
        PING_FAILURES,
        default_state_path,
        read_state,
        stats_ping,
        trace_dump,
    )
    from repro.obs import SnapshotLog, merge_snapshots, render_prometheus

    spec = ClusterSpec.from_file(args.spec)
    state_path = args.state or default_state_path(spec, args.spec)
    state = read_state(state_path)
    auth = spec.authenticator()

    async def scrape_all() -> List[Dict]:
        snapshots = []
        for node, info in sorted(state["nodes"].items()):
            if not info.get("port"):
                continue
            try:
                ack = await stats_ping((info["host"], info["port"]), auth,
                                       timeout=args.timeout)
            except PING_FAILURES:
                print(f"# node {node} unreachable, skipped",
                      file=sys.stderr)
                continue
            if ack.metrics:
                snapshots.append(ack.metrics)
        return snapshots

    if args.metrics_command == "serve":
        import time as time_module

        from repro.obs import MetricsExporter

        addresses = _state_addresses(state)

        def scrape() -> List[Dict]:
            async def gather_all() -> List[Dict]:
                results = await asyncio.gather(
                    *(stats_ping(address, auth, timeout=args.timeout)
                      for address in addresses.values()),
                    return_exceptions=True)
                return [ack.metrics for ack in results
                        if not isinstance(ack, BaseException)
                        and ack.metrics]
            return asyncio.run(gather_all())

        def lookup(op_id: int) -> List[Dict]:
            async def gather_all() -> List[Dict]:
                results = await asyncio.gather(
                    *(trace_dump(address, auth, target_op=op_id,
                                 timeout=args.timeout)
                      for address in addresses.values()),
                    return_exceptions=True)
                records: List[Dict] = []
                for ack in results:
                    if isinstance(ack, BaseException):
                        continue
                    records.extend(dict(r) for r in ack.records or ())
                return records
            return asyncio.run(gather_all())

        exporter = MetricsExporter(scrape, trace_lookup=lookup,
                                   host=args.host, port=args.port)
        host, port = exporter.start()
        print(f"exporter on http://{host}:{port}/metrics "
              f"({len(addresses)} nodes; /metrics.json /traces/<op_id> "
              f"/healthz)")
        try:
            if args.duration > 0:
                time_module.sleep(args.duration)
            else:
                while True:  # pragma: no cover - interactive loop
                    time_module.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            exporter.stop()
        return 0

    if args.watch:
        # Time-series sidecar: one JSON line per scrape interval,
        # appended to --out (or streamed to stdout).
        import time as time_module

        log = SnapshotLog(args.out if args.out else sys.stdout,
                          max_bytes=(args.max_bytes
                                     if args.out and args.max_bytes else None),
                          keep=args.keep, windows=args.windows)
        scrapes = 0
        try:
            while True:
                snapshots = asyncio.run(scrape_all())
                if snapshots:
                    log.append(merge_snapshots(snapshots),
                               ts=time_module.time(),
                               extra={"nodes": len(snapshots)})
                scrapes += 1
                if args.count and scrapes >= args.count:
                    break
                time_module.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            log.close()
        if args.out:
            print(f"appended {log.lines} snapshots to {args.out}",
                  file=sys.stderr)
        return 0

    snapshots = asyncio.run(scrape_all())
    if not snapshots:
        print("no node answered a stats ping", file=sys.stderr)
        return 1
    merged = merge_snapshots(snapshots)
    if args.format == "json":
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_prometheus(merged))
    return 0


def _load_client_spans(path: str) -> List[Dict]:
    """Client span records from a ``--trace`` JSONL file."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


async def _scrape_flights(addresses: Dict, auth, timeout: float,
                          target_op: int = -1) -> List[Dict]:
    """Fan a TraceDump over every node; unreachable nodes are skipped."""
    from repro.deploy import trace_dump

    results = await asyncio.gather(
        *(trace_dump(address, auth, target_op=target_op, timeout=timeout)
          for address in addresses.values()),
        return_exceptions=True)
    records: List[Dict] = []
    for node, ack in zip(addresses, results):
        if isinstance(ack, BaseException):
            print(f"# node {node} unreachable, skipped", file=sys.stderr)
            continue
        records.extend(dict(r) for r in ack.records or ())
    return records


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.deploy import ClusterSpec, default_state_path, read_state
    from repro.obs import (
        JsonlSink,
        MemorySink,
        SamplingSink,
        format_timeline,
        slowest,
        stitch,
        stitch_op,
    )

    spec = ClusterSpec.from_file(args.spec)
    state_path = args.state or default_state_path(spec, args.spec)
    state = read_state(state_path)
    addresses = _state_addresses(state)
    auth = spec.authenticator()

    if args.trace_command == "record":
        import random as random_module

        memory = MemorySink()
        jsonl = JsonlSink(args.out)

        class Tee:
            def emit(self, record: Dict) -> None:
                jsonl.emit(record)
                memory.emit(record)

            def close(self) -> None:
                jsonl.close()

        sink = SamplingSink(Tee(), args.sample)
        rng = random_module.Random(args.seed)

        async def record() -> None:
            client = spec.client("t000", addresses=addresses,
                                 timeout=args.timeout, trace_sink=sink)
            await client.connect()
            try:
                for index in range(args.ops):
                    if index == 0 or rng.random() >= args.read_ratio:
                        value = f"trace-{args.seed}:{index}".encode()
                        await client.write(value.ljust(args.value_size, b"."))
                    else:
                        await client.read()
            finally:
                await client.close()

        asyncio.run(record())
        sink.close()
        op_ids = [r.get("op_id") for r in memory.records]
        print(f"recorded {len(op_ids)} sampled client spans to {args.out} "
              f"(1-in-{args.sample} of {args.ops} ops)")
        if op_ids:
            shown = ", ".join(str(op) for op in op_ids[:12])
            more = " ..." if len(op_ids) > 12 else ""
            print(f"op_ids: {shown}{more}")
            print(f"next: repro trace show {op_ids[-1]} "
                  f"--trace {args.out} --spec {args.spec}")
        return 0

    client_records = _load_client_spans(args.trace)

    if args.trace_command == "show":
        server_records = asyncio.run(_scrape_flights(
            addresses, auth, args.timeout, target_op=args.op_id))
        op = stitch_op(args.op_id, client_records, server_records)
        if op is None:
            print(f"no client span for op {args.op_id} in {args.trace} "
                  f"(sampled out, or never issued?)", file=sys.stderr)
            return 1
        print(format_timeline(op))
        return 0

    # slow --top N
    server_records = asyncio.run(_scrape_flights(
        addresses, auth, args.timeout))
    stitched = stitch(client_records, server_records)
    if not stitched:
        print(f"no stitchable spans in {args.trace}", file=sys.stderr)
        return 1
    rows = []
    for op in slowest(stitched, top=args.top):
        rows.append((op.op_id, op.kind, op.client, op.outcome,
                     f"{op.latency * 1000:.2f}", op.dominant_phase,
                     len(op.servers),
                     ",".join(op.missing_servers) or "-"))
    print(format_table(
        ("op", "kind", "client", "outcome", "latency(ms)",
         "dominant phase", "server records", "missing"), rows,
        title=f"slowest {len(rows)} of {len(stitched)} stitched ops"))
    print(f"drill in: repro trace show <op> --trace {args.trace} "
          f"--spec {args.spec}")
    return 0


def _phase_windows(prev: Dict, cur: Dict) -> Dict[str, Dict]:
    """Per-phase ``{count, p50, p99}`` deltas between two merged scrapes.

    Entries are matched per ``(phase, node)`` so each node's cumulative
    histogram subtracts against its own previous scrape; a shrunk count
    (node restart) falls back to the cumulative values.
    """
    from repro.obs import bucket_percentile

    def index(snapshot: Dict) -> Dict:
        out = {}
        for entry in snapshot.get("histograms", ()):
            if entry.get("name") != "node_phase_seconds":
                continue
            labels = entry.get("labels", {})
            out[(labels.get("phase", ""), labels.get("node", ""))] = entry
        return out

    prev_idx, phases = index(prev), {}
    for (phase, node), entry in index(cur).items():
        counts = list(entry["counts"])
        old = prev_idx.get((phase, node))
        if old is not None and len(old["counts"]) == len(counts):
            deltas = [c - p for c, p in zip(counts, old["counts"])]
            if all(d >= 0 for d in deltas):
                counts = deltas
        agg = phases.setdefault(phase, {
            "bounds": list(entry["buckets"]),
            "counts": [0] * len(counts),
            "max": float(entry.get("max", 0.0)),
        })
        if (agg["bounds"] == list(entry["buckets"])
                and len(agg["counts"]) == len(counts)):
            agg["counts"] = [a + c for a, c in zip(agg["counts"], counts)]
            agg["max"] = max(agg["max"], float(entry.get("max", 0.0)))
    out = {}
    for phase, agg in sorted(phases.items()):
        total = sum(agg["counts"])
        if total:
            out[phase] = {
                "count": total,
                "p50": bucket_percentile(agg["bounds"], agg["counts"],
                                         0.50, agg["max"]),
                "p99": bucket_percentile(agg["bounds"], agg["counts"],
                                         0.99, agg["max"]),
            }
    return out


def _cmd_top(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.deploy import (
        ClusterSpec,
        PING_FAILURES,
        default_state_path,
        health_ping,
        read_state,
        stats_ping,
    )
    from repro.obs import merge_snapshots

    spec = ClusterSpec.from_file(args.spec)
    state_path = args.state or default_state_path(spec, args.spec)
    state = read_state(state_path)
    addresses = _state_addresses(state)
    auth = spec.authenticator()

    async def scrape():
        acks, snapshots = {}, []
        for node, address in addresses.items():
            try:
                acks[node] = await health_ping(address, auth,
                                               timeout=args.timeout)
            except PING_FAILURES:
                acks[node] = None
                continue
            try:
                sack = await stats_ping(address, auth, timeout=args.timeout)
                if sack.metrics:
                    snapshots.append(sack.metrics)
            except PING_FAILURES:
                pass
        return acks, merge_snapshots(snapshots)

    prev_frames: Dict[str, int] = {}
    prev_merged: Dict = {}
    prev_at: Optional[float] = None
    scrapes = 0
    try:
        while True:
            acks, merged = asyncio.run(scrape())
            now = time_module.time()
            elapsed = (now - prev_at) if prev_at is not None else None
            if not args.no_clear and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            healthy = sum(1 for ack in acks.values() if ack is not None)
            print(f"repro top -- {spec.algorithm} f={spec.f} "
                  f"{healthy}/{len(addresses)} nodes healthy -- "
                  f"scrape #{scrapes + 1} every {args.interval:.1f}s")
            rows = []
            for node, ack in acks.items():
                if ack is None:
                    rows.append((node, "down", "-", "-", "-", "-", "-"))
                    continue
                rate = "-"
                if elapsed and node in prev_frames:
                    rate = f"{(ack.frames - prev_frames[node]) / elapsed:.1f}"
                occupancy = "-"
                if getattr(ack, "keys_resident", -1) >= 0:
                    occupancy = (f"{ack.keys_resident}"
                                 f"+{ack.keys_archived}d"
                                 f"/{ack.rehydrations}r")
                rows.append((node, "healthy", ack.frames, rate,
                             ack.throttled, ack.history_len, occupancy))
                prev_frames[node] = ack.frames
            print(format_table(
                ("node", "state", "frames", "frames/s", "throttled",
                 "history", "keys"), rows))
            windows = _phase_windows(prev_merged, merged)
            if windows:
                window_rows = [
                    (phase, digest["count"],
                     f"{digest['p50'] * 1000:.2f}",
                     f"{digest['p99'] * 1000:.2f}")
                    for phase, digest in windows.items()]
                label = (f"last {elapsed:.1f}s" if elapsed is not None
                         else "since start")
                print(format_table(
                    ("phase", "count", "p50(ms)", "p99(ms)"), window_rows,
                    title=f"server phase latency ({label})"))
            prev_merged, prev_at = merged, now
            scrapes += 1
            if args.count and scrapes >= args.count:
                break
            time_module.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from repro.load import LoadProfile, SloPolicy, parse_mix, run_load

    _maybe_uvloop(args)
    profile = LoadProfile(
        users=args.users, rps=args.rps, read_ratio=parse_mix(args.mix),
        keys=args.keys, zipf_s=args.zipf_s, value_size=args.value_size,
        duration=args.duration, warmup=args.warmup, cooldown=args.cooldown,
        seed=args.seed, timeout=args.timeout, algorithm=args.algorithm,
        f=args.f, n=args.n, clients_per_worker=args.clients_per_worker,
        max_history=args.max_history,
    )
    slo = SloPolicy(p99_ms=args.slo_p99_ms,
                    max_error_rate=args.slo_error_rate)
    sweep = ("none" if args.no_sweep
             else "binary" if args.sweep else "step")
    report = asyncio.run(run_load(
        profile, procs=args.procs, workers=args.workers, slo=slo,
        sweep=sweep, sweep_duration=args.sweep_duration,
        inline=args.inline, timeseries_path=args.timeseries,
    ))
    print(report.format())
    if args.out:
        report.write(args.out)
        print(f"wrote {args.out}")
    return 0 if report.safety_ok else 1


def _cmd_load_worker(args: argparse.Namespace) -> int:
    from repro.load import worker_main

    _maybe_uvloop(args)
    return worker_main()


def _cmd_keys(args: argparse.Namespace) -> int:
    from repro.deploy import ClusterSpec
    from repro.sharding import HashRing, key_name

    spec = ClusterSpec.from_file(args.spec)
    config = spec.keyspace_config()
    if config is None:
        print(f"spec {args.spec} has no [keyspace] block; this is a "
              "single-register deployment", file=sys.stderr)
        return 1
    ring = spec.ring()

    if args.keys_command == "locate":
        group = spec.locate(args.key)
        print(f"key {args.key!r}")
        print(f"  ring point: {ring.key_point(args.key):#018x}")
        print(f"  primary:    {ring.primary(args.key)}")
        print(f"  group:      {', '.join(str(node) for node in group)} "
              f"(size {config.group_size}, f={spec.f})")
        return 0

    sample = [key_name(i) for i in range(args.sample)]

    if args.keys_command == "stats":
        share = ring.load_share(sample, config.group_size)
        expected = args.sample * config.group_size / spec.n
        rows = [(str(node), count, f"{count / expected:.2f}x")
                for node, count in sorted(share.items())]
        print(format_table(
            ("node", "keys hosted", "vs. even share"), rows,
            title=f"{spec.n} nodes, group_size={config.group_size}, "
                  f"vnodes={config.vnodes}, seed={config.seed}; "
                  f"{args.sample} sampled keys"))
        print(f"placement fingerprint: "
              f"{ring.fingerprint(sample, config.group_size)[:16]}")
        return 0

    # rebalance --dry-run: compare against the ring with nodes added
    # and/or removed.  Only the dry run exists -- live data migration is
    # out of scope (a moved key rebuilds from its new group's writes).
    if not args.dry_run:
        print("only --dry-run is supported: this computes which keys "
              "would change groups, it does not migrate data",
              file=sys.stderr)
        return 1
    nodes = list(ring.nodes)
    for node in args.remove:
        if node not in nodes:
            print(f"cannot remove unknown node {node!r}", file=sys.stderr)
            return 1
        nodes.remove(node)
    next_index = spec.n
    for _ in range(args.add):
        nodes.append(f"s{next_index:03d}")
        next_index += 1
    if len(nodes) < config.group_size:
        print(f"{len(nodes)} nodes cannot host groups of "
              f"{config.group_size}", file=sys.stderr)
        return 1
    target = HashRing(nodes, vnodes=config.vnodes, seed=config.seed)
    moved = ring.moved_keys(target, sample, config.group_size)
    print(f"fleet {len(ring.nodes)} -> {len(nodes)} nodes "
          f"(+{args.add}/-{len(args.remove)}); groups of "
          f"{config.group_size}")
    print(f"  {len(moved)} of {args.sample} sampled keys change groups "
          f"({len(moved) / args.sample:.1%}); a full reshuffle would "
          f"move ~100%")
    for key in moved[:args.show]:
        print(f"    {key}: "
              f"{'+'.join(str(n) for n in ring.group(key, config.group_size))}"
              f" -> "
              f"{'+'.join(str(n) for n in target.group(key, min(config.group_size, len(nodes))))}")
    if len(moved) > args.show:
        print(f"    ... {len(moved) - args.show} more")
    return 0


def _cmd_modelcheck(args: argparse.Namespace) -> int:
    n, f = args.n, args.f
    print(f"model-checking the BSR read stage at n={n}, f={f} "
          f"(bound: n >= {4 * f + 1})")
    rows = []
    violating = 0
    for w1, w2 in all_quorum_pairs(n, f):
        factory, predicate = bsr_read_stage(n, f, w1, w2)
        checker = ModelChecker(factory, predicate, max_states=args.max_states)
        if args.exhaustive:
            report = checker.verify()
            outcome = ("OK" if report.ok else "VIOLATED")
            if report.truncated:
                outcome += " (truncated)"
            detail = f"{report.states_explored} states"
        else:
            found = checker.find_violation()
            outcome = "VIOLATION FOUND" if found else "safe"
            detail = found[0] if found else ""
        if "VIOLAT" in outcome:
            violating += 1
        rows.append((str(w1), str(w2), outcome, detail))
    print(format_table(("W1 quorum", "W2 quorum", "outcome", "detail"), rows))
    print(f"\n{violating} of {len(rows)} quorum pairs admit a violation")
    return 0 if (violating == 0) == (n >= 4 * f + 1) else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semi-fast Byzantine-tolerant shared registers "
                    "(ICDCS 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list implemented algorithms")

    demo = sub.add_parser("demo", help="run a tiny write/read execution")
    demo.add_argument("--algorithm", default="bsr", choices=ALGORITHMS)
    demo.add_argument("--f", type=int, default=1)
    demo.add_argument("--seed", type=int, default=0)

    scenario = sub.add_parser("scenario", help="replay a proof execution")
    scenario.add_argument("name", choices=("t3", "t5", "t6"))
    scenario.add_argument("--algorithm", default=None,
                          help="register variant for t3 (bsr / bsr-history / "
                               "bsr-2round)")
    scenario.add_argument("--n", type=int, default=None,
                          help="server count for t5/t6 (default: below the bound)")
    scenario.add_argument("--seed", type=int, default=0)

    workload = sub.add_parser("workload", help="run a synthetic workload")
    workload.add_argument("--algorithm", default="bsr", choices=ALGORITHMS)
    workload.add_argument("--f", type=int, default=1)
    workload.add_argument("--ops", type=int, default=200)
    workload.add_argument("--read-ratio", type=float, default=0.9)
    workload.add_argument("--value-size", type=int, default=64)
    workload.add_argument("--interarrival", type=float, default=1.0)
    workload.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="run a workload on a live TCP cluster under a nemesis "
             "fault schedule and check safety + liveness",
    )
    from repro.protocols import runtime_names
    chaos.add_argument("--algorithm", default="bsr",
                       choices=runtime_names())
    chaos.add_argument("--schedule", default="combo", choices=SCHEDULES)
    chaos.add_argument("--f", type=int, default=1)
    chaos.add_argument("--ops", type=int, default=40)
    chaos.add_argument("--read-ratio", type=float, default=0.6)
    chaos.add_argument("--value-size", type=int, default=32)
    chaos.add_argument("--period", type=float, default=0.8,
                       help="seconds per nemesis fault window")
    chaos.add_argument("--timeout", type=float, default=15.0,
                       help="per-operation liveness timeout")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--procs", action="store_true",
                       help="run against real OS processes (SIGKILL "
                            f"crashes; schedules {PROCESS_SCHEDULES})")
    chaos.add_argument("--max-history", type=int, default=None,
                       help="bound every server's history list (GC)")
    chaos.add_argument("--concurrency", type=int, default=1,
                       help="in-flight operations per client (1 = the "
                            "classic closed loop)")
    chaos.add_argument("--uvloop", action="store_true",
                       help="use uvloop when installed (falls back to "
                            "the stdlib loop with a notice)")
    chaos.add_argument("--max-inflight", type=int, default=None,
                       help="client-side admission cap on concurrently "
                            "executing operations")
    chaos.add_argument("--keys", type=int, default=1,
                       help="distinct keys the workload spans (>1 turns "
                            "the cluster into a sharded keyspace and "
                            "checks safety per register)")
    chaos.add_argument("--zipf-s", type=float, default=0.99,
                       help="Zipf exponent for key popularity "
                            "(0 = uniform)")
    chaos.add_argument("--timeseries", default=None,
                       help="append windowed registry snapshots (JSON "
                            "lines with per-interval percentile deltas) "
                            "to this file during the soak")
    chaos.add_argument("--timeseries-interval", type=float, default=1.0,
                       help="seconds between --timeseries snapshots")

    node = sub.add_parser(
        "node", help="serve a single register node in this process")
    node_sub = node.add_subparsers(dest="node_command", required=True)
    node_serve = node_sub.add_parser(
        "serve", help="host one node from a cluster spec until SIGTERM")
    node_serve.add_argument("--spec", required=True,
                            help="cluster spec file (.toml or .json)")
    node_serve.add_argument("--node", required=True,
                            help="node id to serve (e.g. s002)")
    node_serve.add_argument("--uvloop", action="store_true",
                            help="use uvloop when installed (falls back "
                                 "to the stdlib loop with a notice)")
    node_serve.add_argument("--port", type=int, default=None,
                            help="override the spec's port (supervisors pin "
                                 "a restarted node's previous port)")

    cluster = sub.add_parser(
        "cluster",
        help="serve / inspect / signal a process-per-node cluster",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    cluster_serve = cluster_sub.add_parser(
        "serve", help="spawn one OS process per node and supervise them")
    cluster_serve.add_argument("--spec", required=True)
    cluster_serve.add_argument("--state", default=None,
                               help="state file path (default: next to "
                                    "snapshots / the spec)")
    cluster_serve.add_argument("--uvloop", action="store_true",
                               help="use uvloop when installed (falls "
                                    "back to the stdlib loop with a "
                                    "notice)")
    cluster_serve.add_argument("--duration", type=float, default=0.0,
                               help="serve for N seconds then exit "
                                    "(0 = until Ctrl-C)")
    cluster_status = cluster_sub.add_parser(
        "status", help="health-ping every node of a served cluster")
    cluster_status.add_argument("--spec", required=True)
    cluster_status.add_argument("--state", default=None)
    cluster_status.add_argument("--timeout", type=float, default=2.0)
    cluster_status.add_argument("--metrics", action="store_true",
                                help="scrape each node's registry and show "
                                     "per-phase latency histograms")
    cluster_status.add_argument("--json", action="store_true",
                                help="machine-readable status document")
    cluster_kill = cluster_sub.add_parser(
        "kill", help="signal one node process of a served cluster")
    cluster_kill.add_argument("--spec", required=True)
    cluster_kill.add_argument("--state", default=None)
    cluster_kill.add_argument("--node", required=True)
    cluster_kill.add_argument("--signal", default="KILL",
                              help="signal name or number (default KILL)")

    metrics = sub.add_parser(
        "metrics",
        help="scrape a served cluster's metrics (Prometheus text or JSON)",
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command",
                                         required=True)
    metrics_dump = metrics_sub.add_parser(
        "dump", help="scrape every node and print the merged registry")
    metrics_dump.add_argument("--spec", required=True)
    metrics_dump.add_argument("--state", default=None)
    metrics_dump.add_argument("--timeout", type=float, default=2.0)
    metrics_dump.add_argument("--format", default="prometheus",
                              choices=("prometheus", "json"))
    metrics_dump.add_argument("--watch", action="store_true",
                              help="scrape periodically and append one "
                                   "JSON line per interval (time-series "
                                   "sidecar)")
    metrics_dump.add_argument("--interval", type=float, default=2.0,
                              help="seconds between --watch scrapes")
    metrics_dump.add_argument("--count", type=int, default=0,
                              help="stop --watch after N scrapes "
                                   "(0 = until Ctrl-C)")
    metrics_dump.add_argument("--out", default=None,
                              help="append --watch lines to this file "
                                   "(default: stdout)")
    metrics_dump.add_argument("--max-bytes", type=int, default=None,
                              help="rotate the --watch --out file when it "
                                   "would exceed this size (keeps "
                                   "--keep segments)")
    metrics_dump.add_argument("--keep", type=int, default=4,
                              help="rotated segments to retain "
                                   "(file.1 .. file.N)")
    metrics_dump.add_argument("--windows", action="store_true",
                              help="attach per-interval histogram deltas "
                                   "to every --watch line (read back "
                                   "with read_snapshot_log(windows=True))")
    metrics_serve = metrics_sub.add_parser(
        "serve", help="HTTP exporter sidecar: /metrics /metrics.json "
                      "/traces/<op_id> /healthz")
    metrics_serve.add_argument("--spec", required=True)
    metrics_serve.add_argument("--state", default=None)
    metrics_serve.add_argument("--host", default="127.0.0.1")
    metrics_serve.add_argument("--port", type=int, default=9464,
                               help="listen port (0 = ephemeral)")
    metrics_serve.add_argument("--timeout", type=float, default=2.0,
                               help="per-node scrape timeout")
    metrics_serve.add_argument("--duration", type=float, default=0.0,
                               help="serve for N seconds then exit "
                                    "(0 = until Ctrl-C)")

    trace = sub.add_parser(
        "trace",
        help="record client spans and stitch them with server flight "
             "records into causal per-op timelines",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_sub.add_parser(
        "record", help="run a small traced workload against a served "
                       "cluster, appending sampled client spans to a file")
    trace_record.add_argument("--spec", required=True)
    trace_record.add_argument("--state", default=None)
    trace_record.add_argument("--out", required=True,
                              help="client span JSONL file to append to")
    trace_record.add_argument("--ops", type=int, default=20)
    trace_record.add_argument("--read-ratio", type=float, default=0.5)
    trace_record.add_argument("--value-size", type=int, default=32)
    trace_record.add_argument("--sample", type=int, default=1,
                              help="client-side sampling modulus (match "
                                   "the spec's observability.trace_sample "
                                   "so both halves keep the same ops)")
    trace_record.add_argument("--seed", type=int, default=0)
    trace_record.add_argument("--timeout", type=float, default=10.0)
    trace_show = trace_sub.add_parser(
        "show", help="stitched causal timeline for one operation")
    trace_show.add_argument("op_id", type=int)
    trace_show.add_argument("--trace", required=True,
                            help="client span JSONL (from trace record or "
                                 "a client trace_sink)")
    trace_show.add_argument("--spec", required=True)
    trace_show.add_argument("--state", default=None)
    trace_show.add_argument("--timeout", type=float, default=2.0)
    trace_slow = trace_sub.add_parser(
        "slow", help="rank the slowest stitched operations")
    trace_slow.add_argument("--trace", required=True)
    trace_slow.add_argument("--spec", required=True)
    trace_slow.add_argument("--state", default=None)
    trace_slow.add_argument("--top", type=int, default=10)
    trace_slow.add_argument("--timeout", type=float, default=2.0)

    top = sub.add_parser(
        "top",
        help="live cluster dashboard: node health, frame rates, "
             "windowed per-phase percentiles",
    )
    top.add_argument("--spec", required=True)
    top.add_argument("--state", default=None)
    top.add_argument("--interval", type=float, default=2.0)
    top.add_argument("--count", type=int, default=0,
                     help="stop after N scrapes (0 = until Ctrl-C)")
    top.add_argument("--timeout", type=float, default=2.0)
    top.add_argument("--no-clear", action="store_true",
                     help="do not clear the terminal between scrapes")

    load = sub.add_parser(
        "load",
        help="open-loop multi-process load generator with honest latency "
             "and an SLO sweep",
    )
    load.add_argument("--users", type=int, default=200,
                      help="total concurrent sessions across all workers")
    load.add_argument("--rps", type=float, default=500.0,
                      help="target aggregate arrival rate (Poisson)")
    load.add_argument("--mix", default="90/10",
                      help="read/write mix, e.g. 90/10 (or a bare read "
                           "ratio like 0.9)")
    load.add_argument("--keys", type=int, default=64,
                      help="distinct keys (>1 shards the cluster; Zipf "
                           "popularity)")
    load.add_argument("--zipf-s", type=float, default=0.99,
                      help="Zipf exponent for key popularity (0 = uniform)")
    load.add_argument("--value-size", type=int, default=64)
    load.add_argument("--duration", type=float, default=10.0,
                      help="measured window, seconds")
    load.add_argument("--warmup", type=float, default=2.0)
    load.add_argument("--cooldown", type=float, default=0.5)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--timeout", type=float, default=10.0,
                      help="per-operation liveness timeout")
    load.add_argument("--algorithm", default="bsr",
                      choices=runtime_names())
    load.add_argument("--f", type=int, default=1)
    load.add_argument("--n", type=int, default=None)
    load.add_argument("--workers", type=int, default=2,
                      help="worker processes the offered load splits "
                           "across")
    load.add_argument("--clients-per-worker", type=int, default=4,
                      help="real connection sets per worker (sessions "
                           "multiplex over them)")
    load.add_argument("--max-history", type=int, default=128,
                      help="bound every server's per-register history")
    load.add_argument("--procs", action="store_true",
                      help="drive a real process-per-node cluster instead "
                           "of the in-process one")
    load.add_argument("--inline", action="store_true",
                      help="run workers as tasks in this process instead "
                           "of subprocesses (tests, smoke runs)")
    load.add_argument("--sweep", action="store_true",
                      help="binary-refine the max sustainable rate "
                           "(default: step sweep at fractions of --rps)")
    load.add_argument("--no-sweep", action="store_true",
                      help="run only the main pass, no SLO sweep")
    load.add_argument("--sweep-duration", type=float, default=None,
                      help="measured seconds per sweep pass (default: "
                           "duration/3, clamped to [3, 8])")
    load.add_argument("--slo-p99-ms", type=float, default=250.0,
                      help="SLO: honest p99 bound, milliseconds")
    load.add_argument("--slo-error-rate", type=float, default=0.005,
                      help="SLO: failed-operation share bound")
    load.add_argument("--out", default="BENCH_load.json",
                      help="write the report JSON here ('' = skip)")
    load.add_argument("--timeseries", default=None,
                      help="append per-worker snapshot JSON lines to "
                           "this file during the run")
    load.add_argument("--uvloop", action="store_true",
                      help="use uvloop when installed (falls back to the "
                           "stdlib loop with a notice)")

    load_worker = sub.add_parser(
        "load-worker",
        help="internal: one load-rig worker (config on stdin, JSONL out)")
    load_worker.add_argument("--uvloop", action="store_true",
                             help="use uvloop when installed")

    keys = sub.add_parser(
        "keys",
        help="inspect a sharded keyspace: placement stats, key location, "
             "rebalance dry-runs",
    )
    keys_sub = keys.add_subparsers(dest="keys_command", required=True)
    keys_stats = keys_sub.add_parser(
        "stats", help="per-node key share and the placement fingerprint")
    keys_stats.add_argument("--spec", required=True,
                            help="cluster spec with a [keyspace] block")
    keys_stats.add_argument("--sample", type=int, default=1000,
                            help="synthetic keys to place (key-0000 ...)")
    keys_locate = keys_sub.add_parser(
        "locate", help="which quorum group serves one key")
    keys_locate.add_argument("key", help="key name to resolve")
    keys_locate.add_argument("--spec", required=True)
    keys_rebalance = keys_sub.add_parser(
        "rebalance",
        help="dry-run a fleet change: which keys would move groups")
    keys_rebalance.add_argument("--spec", required=True)
    keys_rebalance.add_argument("--dry-run", action="store_true",
                                help="required: only the dry run exists")
    keys_rebalance.add_argument("--add", type=int, default=0,
                                help="hypothetical nodes to add")
    keys_rebalance.add_argument("--remove", action="append", default=[],
                                help="node id to remove (repeatable)")
    keys_rebalance.add_argument("--sample", type=int, default=1000,
                                help="synthetic keys to compare")
    keys_rebalance.add_argument("--show", type=int, default=5,
                                help="moved keys to list individually")

    modelcheck = sub.add_parser(
        "modelcheck",
        help="exhaustively explore read-stage schedules (Theorem 5)",
    )
    modelcheck.add_argument("--n", type=int, default=4,
                            help="server count (default 4 = below the bound)")
    modelcheck.add_argument("--f", type=int, default=1)
    modelcheck.add_argument("--exhaustive", action="store_true",
                            help="full verification instead of directed search")
    modelcheck.add_argument("--max-states", type=int, default=100_000)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "algorithms": _cmd_algorithms,
        "demo": _cmd_demo,
        "scenario": _cmd_scenario,
        "workload": _cmd_workload,
        "chaos": _cmd_chaos,
        "node": _cmd_node,
        "cluster": _cmd_cluster,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "top": _cmd_top,
        "keys": _cmd_keys,
        "load": _cmd_load,
        "load-worker": _cmd_load_worker,
        "modelcheck": _cmd_modelcheck,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; exit quietly
        # (and detach stdout so the interpreter's flush-at-exit does not
        # raise the same error again).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
